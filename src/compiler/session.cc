#include "compiler/session.h"

#include <chrono>

#include "arch/presets.h"
#include "arch/serialize.h"
#include "common/strutil.h"
#include "common/version.h"
#include "graph/analysis.h"
#include "graph/models.h"
#include "graph/serialize.h"
#include "mop/printer.h"
#include "perfsim/perf_engine.h"
#include "sched/multi_level.h"

namespace cimmlc {

const char *
compileStageName(CompileStage stage)
{
    switch (stage) {
      case CompileStage::kLoad: return "load";
      case CompileStage::kValidate: return "validate";
      case CompileStage::kTune: return "tune";
      case CompileStage::kSchedule: return "schedule";
      case CompileStage::kCodegen: return "codegen";
      case CompileStage::kLint: return "lint";
      case CompileStage::kPerf: return "perf";
      case CompileStage::kVerify: return "verify";
    }
    return "?";
}

StatusOr<CompileStage>
parseCompileStage(const std::string &text)
{
    const std::string key = toLower(trim(text));
    for (CompileStage stage :
         {CompileStage::kLoad, CompileStage::kValidate, CompileStage::kTune,
          CompileStage::kSchedule, CompileStage::kCodegen,
          CompileStage::kLint, CompileStage::kPerf,
          CompileStage::kVerify}) {
        if (key == compileStageName(stage))
            return stage;
    }
    return invalidArgument(
        "unknown compile stage '" + text
        + "' (expected load | validate | tune | schedule | codegen | "
          "lint | perf | verify)");
}

StatusOr<ScheduleOptions>
scheduleOptionsByName(const std::string &level)
{
    if (level == "none")
        return ScheduleOptions::none();
    if (level == "cg")
        return ScheduleOptions::cgOnly();
    if (level == "cg+mvm" || level == "mvm")
        return ScheduleOptions::cgMvm();
    if (level == "full")
        return ScheduleOptions::full();
    return invalidArgument("unknown --opt level '" + level + "'");
}

// ----- CompileRequest -------------------------------------------------------

Status
CompileRequest::validate() const
{
    std::vector<std::string> workload_sources;
    if (!model.empty())
        workload_sources.push_back("model");
    if (!model_file.empty())
        workload_sources.push_back("model_file");
    if (!model_text.empty())
        workload_sources.push_back("model_text");
    if (graph != nullptr)
        workload_sources.push_back("graph");
    if (workload_sources.empty())
        return invalidArgument(
            "no workload source (set one of model, model_file, "
            "model_text, graph)");
    if (workload_sources.size() > 1)
        return invalidArgument("conflicting workload sources ("
                               + join(workload_sources, ", ")
                               + "); set exactly one");

    std::vector<std::string> arch_sources;
    if (!arch.empty())
        arch_sources.push_back("arch");
    if (!arch_file.empty())
        arch_sources.push_back("arch_file");
    if (!arch_text.empty())
        arch_sources.push_back("arch_text");
    if (arch_ref != nullptr)
        arch_sources.push_back("arch_ref");
    if (arch_sources.size() > 1)
        return invalidArgument("conflicting architecture sources ("
                               + join(arch_sources, ", ")
                               + "); set at most one");

    if (!options.has_value()) {
        auto parsed = scheduleOptionsByName(opt);
        if (!parsed.isOk())
            return parsed.status();
    }
    if (threads < 0)
        return invalidArgument("threads must be >= 0 (0 = hardware "
                               "concurrency)");
    if (outputs.flow_limit < 0)
        return invalidArgument("outputs.flow_limit must be >= 0");
    if (workload_prefix_nodes < 0)
        return invalidArgument(
            "workload_prefix_nodes must be >= 0 (0 = whole graph)");
    if (lint_strict && !lint)
        return invalidArgument("lint_strict requires lint");
    if (lint && !outputs.flow)
        return invalidArgument(
            "lint needs the meta-operator flow (outputs.flow)");
    CIMMLC_RETURN_IF_ERROR(
        search_budget.validate().withContext("search_budget"));
    CIMMLC_RETURN_IF_ERROR(host_model.validate().withContext("host_model"));
    return Status::ok();
}

// ----- CompileArtifacts -----------------------------------------------------

std::int64_t
CompileArtifacts::flowStatements() const
{
    return code.has_value() ? code->program.counts().total() : 0;
}

namespace {

ConfigValue
number(double v)
{
    return ConfigValue::makeNumber(v);
}

ConfigValue
number(std::int64_t v)
{
    return ConfigValue::makeNumber(static_cast<double>(v));
}

ConfigValue
text(std::string v)
{
    return ConfigValue::makeString(std::move(v));
}

ConfigValue
optionsToConfig(const ScheduleOptions &options)
{
    ConfigValue::Object knobs;
    knobs["cg_duplication"] = ConfigValue::makeBool(options.cg_duplication);
    knobs["cg_pipeline"] = ConfigValue::makeBool(options.cg_pipeline);
    knobs["mvm_duplication"] =
        ConfigValue::makeBool(options.mvm_duplication);
    knobs["mvm_pipeline"] = ConfigValue::makeBool(options.mvm_pipeline);
    knobs["vvm_remap"] = ConfigValue::makeBool(options.vvm_remap);
    knobs["binding"] = text(options.binding.bit_binding == XbarDim::kXB
                                ? "bits-to-crossbars"
                                : "bits-to-columns");
    knobs["segment_max_nodes"] = number(options.segment_max_nodes);
    knobs["dual_mode"] = ConfigValue::makeBool(options.dual_mode);
    knobs["host_offload"] = ConfigValue::makeBool(options.host_offload);
    knobs["text"] = text(options.toString());
    return ConfigValue::makeObject(std::move(knobs));
}

} // namespace

ConfigValue
CompileArtifacts::toConfig() const
{
    ConfigValue::Object doc;
    doc["schema"] = text("cimmlc.report.v1");
    doc["compiler_version"] = text(cimmlcVersion());

    ConfigValue::Object workload_obj;
    workload_obj["name"] = text(workload);
    workload_obj["nodes"] = number(nodes);
    workload_obj["weights"] = number(weights);
    doc["workload"] = ConfigValue::makeObject(std::move(workload_obj));

    ConfigValue::Object arch_obj;
    arch_obj["name"] = text(arch_name);
    arch_obj["mode"] = text(arch_mode);
    doc["arch"] = ConfigValue::makeObject(std::move(arch_obj));

    ConfigValue::Object config_obj;
    config_obj["options"] = optionsToConfig(options);
    config_obj["tuned"] = ConfigValue::makeBool(tuned);
    doc["config"] = ConfigValue::makeObject(std::move(config_obj));

    if (tune.has_value()) {
        ConfigValue::Object tune_obj;
        tune_obj["objective"] = text(tuneObjectiveName(tune->objective));
        tune_obj["candidates"] =
            number(static_cast<std::int64_t>(tune->candidates.size()));
        tune_obj["best"] = optionsToConfig(tune->best().options);
        tune_obj["speedup_over_default"] =
            number(tune->speedupOverDefault());
        tune_obj["cache_hits"] = number(tune->cache_hits);
        tune_obj["evaluated"] = number(tune->evaluated_count);
        tune_obj["pruned"] = number(tune->pruned_count);
        // The tuner only consumes the evaluation cap; serializing the
        // proxy fields here would suggest halving proxies ran.
        if (tune->budget.enabled())
            tune_obj["budget_evals"] =
                number(tune->budget.max_full_evals);
        doc["tune"] = ConfigValue::makeObject(std::move(tune_obj));
    }

    if (perf.has_value()) {
        ConfigValue::Object perf_obj;
        perf_obj["engine"] = text(perfEngineName(perf->engine));
        perf_obj["latency_cycles"] = number(perf->latency_cycles);
        perf_obj["reload_cycles"] = number(perf->reload_cycles);
        ConfigValue::Object energy;
        energy["total_pj"] = number(perf->energy.total());
        energy["xbar_pj"] = number(perf->energy.xbar_pj);
        energy["adc_dac_pj"] = number(perf->energy.adc_dac_pj);
        energy["movement_pj"] = number(perf->energy.movement_pj);
        energy["alu_pj"] = number(perf->energy.alu_pj);
        energy["write_pj"] = number(perf->energy.write_pj);
        perf_obj["energy"] = ConfigValue::makeObject(std::move(energy));
        perf_obj["peak_power_mw"] = number(perf->peak_power_mw);
        perf_obj["avg_power_mw"] = number(perf->avg_power_mw);
        perf_obj["peak_active_xbs"] = number(perf->peak_active_xbs);
        perf_obj["crossbars_mapped"] = number(perf->crossbars_mapped);
        perf_obj["crossbar_utilization"] =
            number(perf->crossbar_utilization);
        if (perf->engine == PerfEngineKind::kEvent) {
            perf_obj["stall_cycles"] = number(perf->stall_cycles);
            ConfigValue::Array resource_rows;
            for (const ResourceUsage &usage : perf->resources) {
                ConfigValue::Object row;
                row["name"] = text(usage.name);
                row["instances"] = number(usage.instances);
                row["ops"] = number(usage.ops);
                row["busy_cycles"] = number(usage.busy_cycles);
                row["stall_cycles"] = number(usage.stall_cycles);
                row["utilization"] = number(usage.utilization);
                resource_rows.push_back(
                    ConfigValue::makeObject(std::move(row)));
            }
            perf_obj["resources"] =
                ConfigValue::makeArray(std::move(resource_rows));
        }
        perf_obj["text"] = text(perf->toString());
        doc["perf"] = ConfigValue::makeObject(std::move(perf_obj));
    }

    if (code.has_value()) {
        ConfigValue::Object flow_obj;
        flow_obj["statements"] = number(flowStatements());
        flow_obj["executable"] = ConfigValue::makeBool(code->executable);
        flow_obj["summary"] = text(code->program.summary());
        if (!flow_text.empty())
            flow_obj["text"] = text(flow_text);
        doc["flow"] = ConfigValue::makeObject(std::move(flow_obj));
    }

    if (lint.has_value()) {
        ConfigValue::Object lint_obj;
        lint_obj["errors"] = number(lint->errors());
        lint_obj["warnings"] = number(lint->warnings());
        lint_obj["statements"] = number(lint->statements);
        lint_obj["l0_peak_live_elems"] = number(lint->l0_peak_live_elems);
        lint_obj["l1_peak_live_elems"] = number(lint->l1_peak_live_elems);
        lint_obj["crossbars_programmed"] =
            number(lint->crossbars_programmed);
        lint_obj["diagnostics"] = diagnosticsToConfig(lint->diagnostics);
        doc["lint"] = ConfigValue::makeObject(std::move(lint_obj));
    }

    // Dual-mode / hybrid-offload sections only appear when their knob is
    // on, so reports from knob-off runs keep their historical bytes.
    if (options.dual_mode && schedule.has_value()) {
        ConfigValue::Object mode_obj;
        std::int64_t resident_count = 0;
        ConfigValue::Array seg_rows;
        for (std::size_t s = 0; s < schedule->segments.size(); ++s) {
            const Segment &segment = schedule->segments[s];
            if (segment.resident)
                ++resident_count;
            ConfigValue::Object row;
            row["segment"] = number(static_cast<std::int64_t>(s));
            row["resident"] = ConfigValue::makeBool(segment.resident);
            row["nodes"] =
                number(static_cast<std::int64_t>(segment.nodes.size()));
            row["cores_used"] = number(segment.cores_used);
            row["reload_cycles"] = number(segment.reload_cycles);
            seg_rows.push_back(ConfigValue::makeObject(std::move(row)));
        }
        mode_obj["resident_segments"] = number(resident_count);
        mode_obj["segments"] = ConfigValue::makeArray(std::move(seg_rows));
        doc["mode_map"] = ConfigValue::makeObject(std::move(mode_obj));
    }

    if (options.host_offload && schedule.has_value()) {
        ConfigValue::Object offload_obj;
        offload_obj["host_model"] = text(schedule->host_model.tag());
        ConfigValue::Array region_rows;
        for (const HostRegion &region : schedule->host_regions) {
            ConfigValue::Object row;
            row["nodes"] =
                number(static_cast<std::int64_t>(region.nodes.size()));
            row["host_cycles"] = number(region.host_cycles);
            row["chip_cycles"] = number(region.chip_cycles);
            row["transfer_bits"] = number(region.transfer_bits);
            region_rows.push_back(
                ConfigValue::makeObject(std::move(row)));
        }
        offload_obj["regions"] =
            ConfigValue::makeArray(std::move(region_rows));
        doc["offload"] = ConfigValue::makeObject(std::move(offload_obj));
    }

    if (!schedule_report.empty())
        doc["schedule_report"] = text(schedule_report);

    if (verify.has_value()) {
        ConfigValue::Object verify_obj;
        verify_obj["match"] = ConfigValue::makeBool(verify->match);
        verify_obj["outputs_checked"] = number(verify->outputs_checked);
        verify_obj["elements_checked"] = number(verify->elements_checked);
        verify_obj["mismatches"] = number(verify->mismatches);
        if (!verify->first_mismatch.empty())
            verify_obj["first_mismatch"] = text(verify->first_mismatch);
        verify_obj["flow_ops"] = number(verify->flow_ops);
        doc["verify"] = ConfigValue::makeObject(std::move(verify_obj));
    }

    ConfigValue::Array stage_rows;
    for (const StageTrace &trace : stages) {
        ConfigValue::Object row;
        row["stage"] = text(compileStageName(trace.stage));
        row["status"] = text(trace.status.toString());
        row["wall_ms"] = number(trace.wall_ms);
        row["cached"] = ConfigValue::makeBool(trace.cached);
        if (!trace.detail.empty())
            row["detail"] = text(trace.detail);
        stage_rows.push_back(ConfigValue::makeObject(std::move(row)));
    }
    doc["stages"] = ConfigValue::makeArray(std::move(stage_rows));

    return ConfigValue::makeObject(std::move(doc));
}

// ----- CompilerSession ------------------------------------------------------

bool
CompilerSession::stageEnabled(CompileStage stage) const
{
    switch (stage) {
      case CompileStage::kTune: return request_.tune;
      case CompileStage::kCodegen:
        // The event perf engine replays the emitted flow, so codegen
        // runs for it even when the caller did not ask for the flow
        // artifact (e.g. DSE evaluations with outputs.flow = false).
        return request_.outputs.flow ||
               (request_.outputs.perf &&
                request_.perf_engine == PerfEngineKind::kEvent &&
                static_cast<int>(request_.stop_after) >=
                    static_cast<int>(CompileStage::kPerf));
      case CompileStage::kLint: return request_.lint;
      case CompileStage::kPerf: return request_.outputs.perf;
      case CompileStage::kVerify: return request_.outputs.verify;
      default: return true;
    }
}

Status
CompilerSession::stageLoad(CompileArtifacts &artifacts, std::string &detail)
{
    if (request_.graph != nullptr) {
        graph_ = request_.graph;
    } else if (!request_.model.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(owned_graph_,
                                models::byNameChecked(request_.model));
        graph_ = &*owned_graph_;
    } else if (!request_.model_file.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(owned_graph_,
                                graphFromFile(request_.model_file));
        graph_ = &*owned_graph_;
    } else {
        CIMMLC_ASSIGN_OR_RETURN(owned_graph_,
                                graphFromText(request_.model_text));
        graph_ = &*owned_graph_;
    }

    if (request_.arch_ref != nullptr) {
        arch_ = request_.arch_ref;
    } else if (!request_.arch_file.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(owned_arch_,
                                archFromFile(request_.arch_file));
        arch_ = &*owned_arch_;
    } else if (!request_.arch_text.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(owned_arch_,
                                archFromText(request_.arch_text));
        arch_ = &*owned_arch_;
    } else {
        const std::string name =
            request_.arch.empty() ? "isaac-baseline" : request_.arch;
        CIMMLC_ASSIGN_OR_RETURN(owned_arch_, presets::byName(name));
        arch_ = &*owned_arch_;
    }

    if (request_.workload_prefix_nodes > 0) {
        // Proxy fidelity: replace the workload with its topological
        // prefix, so every downstream stage prices the truncated graph.
        CIMMLC_ASSIGN_OR_RETURN(
            Graph prefix,
            topoPrefix(*graph_, request_.workload_prefix_nodes));
        owned_graph_ = std::move(prefix);
        graph_ = &*owned_graph_;
    }

    if (request_.artifact_cache != nullptr) {
        // Every downstream stage key chains from this digest; the
        // TuneCache fingerprint already covers the graph structure and
        // every cost-relevant Abs-arch parameter, so two requests that
        // price differently can never share a base.
        // A non-default host model reprices offload-enabled options, so
        // it joins the base; the default model's tag is empty, keeping
        // pre-offload digests (and populated caches) valid verbatim.
        base_digest_ = ArtifactHash()
                           .mix(TuneCache::fingerprint(*graph_, *arch_, 0))
                           .mix(request_.host_model.cacheTag())
                           .digest();
    }

    artifacts.workload = graph_->name();
    artifacts.nodes = static_cast<std::int64_t>(graph_->nodeCount());
    artifacts.weights = graph_->totalWeights();
    artifacts.arch_name = arch_->name;
    artifacts.arch_mode = computeModeName(arch_->mode);
    artifacts.arch_text = arch_->toString();
    detail = strformat("workload '%s' (%lld nodes, %lld weights) on "
                       "arch '%s' [%s]",
                       artifacts.workload.c_str(),
                       static_cast<long long>(artifacts.nodes),
                       static_cast<long long>(artifacts.weights),
                       artifacts.arch_name.c_str(),
                       artifacts.arch_mode.c_str());
    return Status::ok();
}

Status
CompilerSession::stageValidate(std::string &detail)
{
    CIMMLC_RETURN_IF_ERROR(validateGraphForScheduling(*graph_));
    CIMMLC_RETURN_IF_ERROR(arch_->validate());
    detail = "graph and Abs-arch preconditions hold";
    return Status::ok();
}

Status
CompilerSession::stageTune(CompileArtifacts &artifacts, std::string &detail)
{
    AutoTuneConfig config;
    config.objective = request_.objective;
    config.threads = request_.threads;
    config.cache = request_.tune_cache;
    config.budget = request_.search_budget;
    config.host_model = request_.host_model;
    const AutoTuner tuner(config);
    CIMMLC_ASSIGN_OR_RETURN(TuneResult tuned, tuner.tune(*graph_, *arch_));
    artifacts.options = tuned.best().options;
    artifacts.tuned = true;
    artifacts.tune = std::move(tuned);
    detail = artifacts.tune->summary();
    return Status::ok();
}

Status
CompilerSession::stageSchedule(CompileArtifacts &artifacts,
                               std::string &detail)
{
    CIMMLC_ASSIGN_OR_RETURN(
        artifacts.schedule,
        scheduleGraph(*graph_, *arch_, artifacts.options,
                      request_.host_model));
    if (request_.outputs.schedule_report)
        artifacts.schedule_report = artifacts.schedule->summary(*graph_);
    detail = strformat("%zu segments, latency %.6g cycles, config %s",
                       artifacts.schedule->segments.size(),
                       artifacts.schedule->total_latency_cycles,
                       artifacts.options.toString().c_str());
    return Status::ok();
}

Status
CompilerSession::stageCodegen(CompileArtifacts &artifacts,
                              std::string &detail)
{
    CIMMLC_ASSIGN_OR_RETURN(artifacts.code,
                            generateProgram(*graph_, *arch_,
                                            *artifacts.schedule,
                                            request_.codegen));
    if (request_.outputs.flow_text) {
        PrintOptions print;
        print.max_statements = request_.outputs.flow_limit;
        artifacts.flow_text = printProgram(artifacts.code->program, print);
    }
    detail = artifacts.code->program.summary();
    return Status::ok();
}

Status
CompilerSession::stageLint(CompileArtifacts &artifacts, std::string &detail)
{
    AnalyzeOptions options;
    // Compressed flows emit one template window inside repeat blocks;
    // restrict mopcheck to the checks that stay sound there.
    options.executable = artifacts.code->executable;
    // Codegen assigns tensor offsets in a virtual L0 space (the global
    // buffer is off-chip-backed; l0_size_kib prices bandwidth/energy),
    // so the physical L0 bound does not apply to emitted flows.
    options.validate.enforce_l0_capacity = false;
    // When a model does not fit the array, codegen deliberately emits
    // runtime weight reloads; the perf model prices them. That is a
    // capacity decision, not a program defect, so the device write
    // policy is advisory for emitted flows.
    options.validate.enforce_write_policy = false;
    // Graph inputs are loaded into L0 by the host before the flow runs.
    for (TensorId input : graph_->inputs()) {
        auto it = artifacts.code->tensor_offsets.find(input);
        if (it == artifacts.code->tensor_offsets.end())
            continue;
        LiveInRegion region;
        region.space = MemSpace::kL0;
        region.begin = it->second;
        region.end = it->second + graph_->tensor(input).numel();
        options.live_in.push_back(region);
    }
    artifacts.lint =
        analyzeProgram(artifacts.code->program, *arch_, options);
    detail = artifacts.lint->summary();
    if (request_.lint_strict && artifacts.lint->errors() > 0) {
        const Status first = firstError(artifacts.lint->diagnostics);
        return Status(StatusCode::kFailedPrecondition,
                      strformat("mopcheck found %lld error findings "
                                "(first: %s)",
                                static_cast<long long>(
                                    artifacts.lint->errors()),
                                first.message().c_str()));
    }
    return Status::ok();
}

Status
CompilerSession::stagePerf(CompileArtifacts &artifacts, std::string &detail)
{
    const std::unique_ptr<PerfEngine> engine =
        makePerfEngine(request_.perf_engine);
    PerfInput input;
    input.graph = graph_;
    input.arch = arch_;
    input.schedule = &*artifacts.schedule;
    input.program =
        artifacts.code.has_value() ? &artifacts.code->program : nullptr;
    CIMMLC_ASSIGN_OR_RETURN(artifacts.perf, engine->evaluate(input));
    detail = artifacts.perf->toString();
    return Status::ok();
}

Status
CompilerSession::stageVerify(CompileArtifacts &artifacts,
                             std::string &detail)
{
    CIMMLC_ASSIGN_OR_RETURN(
        artifacts.verify,
        verifyWithRandomStimulus(*graph_, *arch_, artifacts.options,
                                 request_.verify_seed));
    detail = strformat(
        "%s (%lld elements, %lld flow ops)",
        artifacts.verify->match ? "BIT-EXACT MATCH" : "MISMATCH",
        static_cast<long long>(artifacts.verify->elements_checked),
        static_cast<long long>(artifacts.verify->flow_ops));
    return Status::ok();
}

std::string
CompilerSession::stageKey(CompileStage stage,
                          const CompileArtifacts &artifacts) const
{
    if (base_digest_.empty() || stage == CompileStage::kLoad)
        return std::string();
    ArtifactHash hash;
    hash.mix(base_digest_);
    // The emitted flow is a pure function of (graph, arch, options,
    // codegen parameters); lint and flow-replaying perf chain from the
    // same inputs as codegen itself.
    const auto mix_codegen_inputs = [this, &artifacts, &hash] {
        hash.mix(artifacts.options.toString());
        hash.mix(request_.codegen.unroll);
        hash.mix(request_.codegen.max_ops);
        for (const auto &[node, params] : request_.codegen.shifts) {
            hash.mix(static_cast<std::int64_t>(node));
            hash.mix(static_cast<std::int64_t>(params.shift));
        }
    };
    switch (stage) {
      case CompileStage::kLoad:
        return std::string();
      case CompileStage::kValidate:
        // Depends only on the graph and the Abs-arch.
        break;
      case CompileStage::kTune:
        hash.mix(tuneObjectiveName(request_.objective));
        hash.mix(request_.search_budget.toString());
        break;
      case CompileStage::kSchedule:
        // artifacts.options is the configuration actually in effect —
        // a replayed tune stage restores it first, so a tuned and an
        // explicitly-configured run that agree on the options share
        // the schedule artifact.
        hash.mix(artifacts.options.toString());
        break;
      case CompileStage::kCodegen:
      case CompileStage::kLint:
        // lint_strict stays out of the key: the strict verdict is
        // re-applied to the replayed findings (see replayStage).
        mix_codegen_inputs();
        break;
      case CompileStage::kPerf:
        hash.mix(perfEngineName(request_.perf_engine));
        hash.mix(artifacts.options.toString());
        hash.mix(artifacts.code.has_value());
        if (artifacts.code.has_value())
            mix_codegen_inputs();
        break;
      case CompileStage::kVerify:
        // Verify unrolls and executes the emitted flow, so it chains
        // from the same inputs as codegen, plus the stimulus seed.
        mix_codegen_inputs();
        hash.mix(static_cast<std::int64_t>(request_.verify_seed));
        break;
    }
    return hash.digest();
}

Status
CompilerSession::replayStage(CompileStage stage,
                             const ArtifactCache::Entry &entry,
                             CompileArtifacts &artifacts)
{
    switch (stage) {
      case CompileStage::kLoad:
      case CompileStage::kValidate:
        return Status::ok();
      case CompileStage::kTune: {
        artifacts.tune =
            *std::static_pointer_cast<const TuneResult>(entry.value);
        artifacts.tuned = true;
        artifacts.options = artifacts.tune->best().options;
        return Status::ok();
      }
      case CompileStage::kSchedule: {
        artifacts.schedule =
            *std::static_pointer_cast<const Schedule>(entry.value);
        if (request_.outputs.schedule_report)
            artifacts.schedule_report =
                artifacts.schedule->summary(*graph_);
        return Status::ok();
      }
      case CompileStage::kCodegen: {
        artifacts.code =
            *std::static_pointer_cast<const CodegenResult>(entry.value);
        if (request_.outputs.flow_text) {
            PrintOptions print;
            print.max_statements = request_.outputs.flow_limit;
            artifacts.flow_text =
                printProgram(artifacts.code->program, print);
        }
        return Status::ok();
      }
      case CompileStage::kLint: {
        artifacts.lint =
            *std::static_pointer_cast<const AnalyzeResult>(entry.value);
        if (request_.lint_strict && artifacts.lint->errors() > 0) {
            const Status first = firstError(artifacts.lint->diagnostics);
            return Status(StatusCode::kFailedPrecondition,
                          strformat("mopcheck found %lld error findings "
                                    "(first: %s)",
                                    static_cast<long long>(
                                        artifacts.lint->errors()),
                                    first.message().c_str()));
        }
        return Status::ok();
      }
      case CompileStage::kPerf:
        artifacts.perf =
            *std::static_pointer_cast<const PerfReport>(entry.value);
        return Status::ok();
      case CompileStage::kVerify:
        artifacts.verify =
            *std::static_pointer_cast<const VerifyReport>(entry.value);
        return Status::ok();
    }
    return Status::ok();
}

void
CompilerSession::storeStage(CompileStage stage, const std::string &key,
                            double compute_ms,
                            const CompileArtifacts &artifacts,
                            const std::string &detail)
{
    ArtifactCache::Entry entry;
    entry.detail = detail;
    entry.compute_ms = compute_ms;
    switch (stage) {
      case CompileStage::kLoad:
        return;
      case CompileStage::kValidate:
        break; // no artifact beyond the detail line
      case CompileStage::kTune:
        entry.value = std::make_shared<const TuneResult>(*artifacts.tune);
        break;
      case CompileStage::kSchedule:
        entry.value =
            std::make_shared<const Schedule>(*artifacts.schedule);
        break;
      case CompileStage::kCodegen:
        entry.value =
            std::make_shared<const CodegenResult>(*artifacts.code);
        break;
      case CompileStage::kLint:
        entry.value =
            std::make_shared<const AnalyzeResult>(*artifacts.lint);
        break;
      case CompileStage::kPerf:
        entry.value = std::make_shared<const PerfReport>(*artifacts.perf);
        break;
      case CompileStage::kVerify:
        entry.value =
            std::make_shared<const VerifyReport>(*artifacts.verify);
        break;
    }
    request_.artifact_cache->insert(compileStageName(stage), key,
                                    std::move(entry));
}

std::size_t
CompilerSession::cachedStageCount(const CompileArtifacts &artifacts)
{
    std::size_t count = 0;
    for (const StageTrace &trace : artifacts.stages)
        if (trace.cached)
            ++count;
    return count;
}

Status
CompilerSession::runStage(CompileStage stage, CompileArtifacts &artifacts)
{
    StageTrace trace;
    trace.stage = stage;
    const auto start = std::chrono::steady_clock::now();

    std::string key;
    if (request_.artifact_cache != nullptr) {
        key = stageKey(stage, artifacts);
        if (!key.empty()) {
            if (auto entry = request_.artifact_cache->lookup(
                    compileStageName(stage), key)) {
                trace.status = replayStage(stage, *entry, artifacts);
                trace.detail = entry->detail;
                trace.cached = true;
            }
        }
    }

    if (!trace.cached) {
        switch (stage) {
          case CompileStage::kLoad:
            trace.status = stageLoad(artifacts, trace.detail);
            break;
          case CompileStage::kValidate:
            trace.status = stageValidate(trace.detail);
            break;
          case CompileStage::kTune:
            trace.status = stageTune(artifacts, trace.detail);
            break;
          case CompileStage::kSchedule:
            trace.status = stageSchedule(artifacts, trace.detail);
            break;
          case CompileStage::kCodegen:
            trace.status = stageCodegen(artifacts, trace.detail);
            break;
          case CompileStage::kLint:
            trace.status = stageLint(artifacts, trace.detail);
            break;
          case CompileStage::kPerf:
            trace.status = stagePerf(artifacts, trace.detail);
            break;
          case CompileStage::kVerify:
            trace.status = stageVerify(artifacts, trace.detail);
            break;
        }
        if (!key.empty() && trace.status.isOk()) {
            const double compute_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            storeStage(stage, key, compute_ms, artifacts, trace.detail);
        }
    }

    trace.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    artifacts.stages.push_back(std::move(trace));
    if (observer_)
        observer_(artifacts.stages.back(), artifacts);
    return artifacts.stages.back().status.withContext(
        compileStageName(stage));
}

StatusOr<CompileArtifacts>
CompilerSession::run()
{
    {
        const Status valid = request_.validate();
        if (!valid.isOk())
            return valid.withContext("CompileRequest");
    }

    CompileArtifacts artifacts;
    if (request_.options.has_value()) {
        artifacts.options = *request_.options;
    } else {
        CIMMLC_ASSIGN_OR_RETURN(artifacts.options,
                                scheduleOptionsByName(request_.opt));
    }

    for (CompileStage stage :
         {CompileStage::kLoad, CompileStage::kValidate, CompileStage::kTune,
          CompileStage::kSchedule, CompileStage::kCodegen,
          CompileStage::kLint, CompileStage::kPerf,
          CompileStage::kVerify}) {
        if (cancel_check_ && cancel_check_())
            return Status(StatusCode::kFailedPrecondition,
                          strformat("canceled before the %s stage",
                                    compileStageName(stage)));
        if (stageEnabled(stage))
            CIMMLC_RETURN_IF_ERROR(runStage(stage, artifacts));
        if (stage == request_.stop_after)
            break;
    }
    return artifacts;
}

} // namespace cimmlc
