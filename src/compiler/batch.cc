#include "compiler/batch.h"

#include <algorithm>

#include "arch/presets.h"
#include "common/config.h"
#include "common/strutil.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "graph/models.h"

namespace cimmlc {

namespace {

/** Per-run tuning context shared by every job of one sweep. */
struct TuneContext {
    TuneObjective objective = TuneObjective::kLatency;
    TuneCache *cache = nullptr; //!< nullptr = tuning disabled
};

/** Runs one job into @p entry; never throws or aborts on bad names. */
void
compileJob(const BatchJob &job, const ScheduleOptions &options,
           const TuneContext &tune, BatchEntry &entry)
{
    entry.job = job;

    auto arch = presets::byName(job.arch);
    if (!arch.isOk()) {
        entry.status = arch.status().withContext("job '" + job.model + " x "
                                                 + job.arch + "'");
        return;
    }

    // models::byName fatal()s on unknown names; reject them gracefully.
    const std::vector<std::string> known = models::availableModels();
    if (std::find(known.begin(), known.end(), toLower(job.model))
        == known.end()) {
        entry.status = notFound("unknown model '" + job.model + "'");
        return;
    }
    const Graph graph = models::byName(job.model);
    entry.nodes = static_cast<std::int64_t>(graph.nodeCount());
    entry.weights = graph.totalWeights();

    ScheduleOptions job_options = options;
    if (tune.cache != nullptr) {
        // Job-level parallelism already fills the pool; tune serially
        // inside the job so nested pools do not oversubscribe.
        const AutoTuner tuner(
            AutoTuneConfig{tune.objective, /*threads=*/1, tune.cache});
        auto tuned = tuner.tune(graph, arch.value());
        if (!tuned.isOk()) {
            entry.status = tuned.status().withContext(
                "job '" + job.model + " x " + job.arch + "'");
            return;
        }
        job_options = tuned.value().best().options;
        entry.tuned = true;
    }
    entry.config = job_options.toString();

    const CimCompiler compiler(std::move(arch).value(), job_options);
    auto result = compiler.compile(graph);
    if (!result.isOk()) {
        entry.status = result.status().withContext(
            "job '" + job.model + " x " + job.arch + "'");
        return;
    }
    entry.status = Status::ok();
    entry.perf = result.value().perf;
    entry.flow_statements = result.value().code.program.counts().total();
}

} // namespace

std::int64_t
BatchResult::okCount() const
{
    std::int64_t ok = 0;
    for (const BatchEntry &entry : entries)
        if (entry.status.isOk())
            ++ok;
    return ok;
}

std::string
BatchResult::table() const
{
    TextTable table({"model", "arch", "latency (cyc)", "energy (pJ)",
                     "avg power (mW)", "xbar util", "flow ops", "config",
                     "status"});
    for (const BatchEntry &entry : entries) {
        if (entry.status.isOk()) {
            table.addRow({entry.job.model, entry.job.arch,
                          strformat("%.6g", entry.perf.latency_cycles),
                          strformat("%.6g", entry.perf.energy.total()),
                          strformat("%.4g", entry.perf.avg_power_mw),
                          strformat("%.1f%%",
                                    entry.perf.crossbar_utilization * 100.0),
                          strformat("%lld", static_cast<long long>(
                                                entry.flow_statements)),
                          entry.tuned ? "tuned: " + entry.config
                                      : entry.config,
                          "ok"});
        } else {
            table.addRow({entry.job.model, entry.job.arch, "-", "-", "-",
                          "-", "-", "-", entry.status.toString()});
        }
    }
    return table.render();
}

StatusOr<BatchResult>
BatchCompiler::run(const std::vector<BatchJob> &jobs) const
{
    if (jobs.empty())
        return invalidArgument("batch sweep has no jobs");

    BatchResult result;
    result.entries.resize(jobs.size());

    // One memo for the whole sweep: jobs that repeat a model x arch
    // pair reuse every candidate evaluation. Cached values are
    // bit-identical to fresh ones, so hits cannot perturb the output.
    TuneCache cache;
    const TuneContext tune{objective_, tune_ ? &cache : nullptr};

    if (threads_ == 1) {
        // Serial reference path: the determinism tests compare against it.
        for (std::size_t i = 0; i < jobs.size(); ++i)
            compileJob(jobs[i], options_, tune, result.entries[i]);
        return result;
    }

    ThreadPool pool(threads_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([this, &jobs, &result, &tune, i] {
            compileJob(jobs[i], options_, tune, result.entries[i]);
        });
    }
    pool.wait();
    return result;
}

StatusOr<std::vector<BatchJob>>
BatchCompiler::crossProduct(const std::vector<std::string> &model_names,
                            const std::vector<std::string> &arch_names)
{
    if (model_names.empty())
        return invalidArgument("sweep needs at least one model");
    if (arch_names.empty())
        return invalidArgument("sweep needs at least one architecture");

    const std::vector<std::string> known = models::availableModels();
    for (const std::string &model : model_names) {
        if (std::find(known.begin(), known.end(), toLower(model))
            == known.end())
            return notFound("unknown model '" + model + "'");
    }
    for (const std::string &arch : arch_names) {
        auto preset = presets::byName(arch);
        if (!preset.isOk())
            return preset.status();
    }

    std::vector<BatchJob> jobs;
    jobs.reserve(model_names.size() * arch_names.size());
    for (const std::string &model : model_names)
        for (const std::string &arch : arch_names)
            jobs.push_back(BatchJob{model, arch});
    return jobs;
}

StatusOr<ScheduleOptions>
scheduleOptionsByName(const std::string &level)
{
    if (level == "none")
        return ScheduleOptions::none();
    if (level == "cg")
        return ScheduleOptions::cgOnly();
    if (level == "cg+mvm" || level == "mvm")
        return ScheduleOptions::cgMvm();
    if (level == "full")
        return ScheduleOptions::full();
    return invalidArgument("unknown --opt level '" + level + "'");
}

namespace {

StatusOr<BatchSweep>
sweepFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("sweep file must be a JSON object");

    auto readNames = [&doc](const char *key)
        -> StatusOr<std::vector<std::string>> {
        CIMMLC_ASSIGN_OR_RETURN(const ConfigValue list, doc.get(key));
        if (!list.isArray() || list.asArray().empty())
            return parseError(std::string("sweep '") + key
                              + "' must be a non-empty array of strings");
        std::vector<std::string> names;
        for (const ConfigValue &item : list.asArray()) {
            if (!item.isString())
                return parseError(std::string("sweep '") + key
                                  + "' entries must be strings");
            names.push_back(item.asString());
        }
        return names;
    };

    CIMMLC_ASSIGN_OR_RETURN(const std::vector<std::string> model_names,
                            readNames("models"));
    CIMMLC_ASSIGN_OR_RETURN(const std::vector<std::string> arch_names,
                            readNames("archs"));

    BatchSweep sweep;
    CIMMLC_ASSIGN_OR_RETURN(sweep.jobs, BatchCompiler::crossProduct(
                                            model_names, arch_names));
    CIMMLC_ASSIGN_OR_RETURN(
        sweep.options,
        scheduleOptionsByName(doc.getStringOr("opt", "full")));
    sweep.threads = static_cast<int>(doc.getIntOr("threads", 0));
    if (sweep.threads < 0)
        return invalidArgument("sweep 'threads' must be >= 0");
    sweep.tune = doc.getBoolOr("tune", false);
    CIMMLC_ASSIGN_OR_RETURN(
        sweep.objective,
        parseTuneObjective(doc.getStringOr("objective", "latency")));
    return sweep;
}

} // namespace

StatusOr<BatchSweep>
sweepFromText(const std::string &text)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, parseConfig(text));
    return sweepFromConfig(doc);
}

StatusOr<BatchSweep>
sweepFromFile(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, loadConfigFile(path));
    return sweepFromConfig(doc);
}

} // namespace cimmlc
