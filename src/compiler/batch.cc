#include "compiler/batch.h"

#include <algorithm>

#include "arch/presets.h"
#include "common/config.h"
#include "common/strutil.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "graph/models.h"

namespace cimmlc {

namespace {

/** Per-run tuning context shared by every job of one sweep. */
struct TuneContext {
    TuneObjective objective = TuneObjective::kLatency;
    TuneCache *cache = nullptr; //!< nullptr = tuning disabled
    SearchBudget budget;        //!< per-job tuner evaluation budget
    bool lint = false;          //!< run mopcheck on each job's flow
    bool lint_strict = false;   //!< lint errors fail the job
    //! perf engine each job evaluates with
    PerfEngineKind perf_engine = PerfEngineKind::kClosedForm;
};

/** Runs one job into @p entry; never throws or aborts on bad names. */
void
compileJob(const BatchJob &job, const ScheduleOptions &options,
           const TuneContext &tune, BatchEntry &entry)
{
    entry.job = job;

    CompileRequest request;
    request.model = job.model;
    request.arch = job.arch;
    request.options = options;
    if (tune.cache != nullptr) {
        // Job-level parallelism already fills the pool; tune serially
        // inside the job so nested pools do not oversubscribe.
        request.tune = true;
        request.objective = tune.objective;
        request.tune_cache = tune.cache;
        request.search_budget = tune.budget;
        request.threads = 1;
    }
    request.lint = tune.lint;
    request.lint_strict = tune.lint_strict;
    request.perf_engine = tune.perf_engine;

    CompilerSession session(std::move(request));
    // Identity facts survive in the entry even when a later stage fails
    // (a strict lint failure still reports its finding counts).
    session.setObserver([&entry](const StageTrace &trace,
                                 const CompileArtifacts &artifacts) {
        if (trace.stage == CompileStage::kLoad && trace.status.isOk()) {
            entry.nodes = artifacts.nodes;
            entry.weights = artifacts.weights;
        }
        if (trace.stage == CompileStage::kLint
            && artifacts.lint.has_value()) {
            entry.lint_errors = artifacts.lint->errors();
            entry.lint_warnings = artifacts.lint->warnings();
        }
    });
    auto artifacts = session.run();
    if (!artifacts.isOk()) {
        entry.status = artifacts.status().withContext(
            "job '" + job.model + " x " + job.arch + "'");
        return;
    }
    const CompileArtifacts &compiled = artifacts.value();
    entry.tuned = compiled.tuned;
    entry.config = compiled.options.toString();
    entry.status = Status::ok();
    entry.perf = *compiled.perf;
    entry.flow_statements = compiled.flowStatements();
}

} // namespace

std::int64_t
BatchResult::okCount() const
{
    std::int64_t ok = 0;
    for (const BatchEntry &entry : entries)
        if (entry.status.isOk())
            ++ok;
    return ok;
}

std::string
BatchResult::table() const
{
    // The lint column only appears when some job ran mopcheck, so
    // non-linting sweeps keep their historical table shape.
    bool linted = false;
    for (const BatchEntry &entry : entries)
        linted = linted || entry.lint_errors >= 0;

    std::vector<std::string> header{"model", "arch", "latency (cyc)",
                                    "energy (pJ)", "avg power (mW)",
                                    "xbar util", "flow ops"};
    if (linted)
        header.push_back("lint");
    header.push_back("config");
    header.push_back("status");

    TextTable table(header);
    for (const BatchEntry &entry : entries) {
        std::string lint = "-";
        if (entry.lint_errors >= 0) {
            lint = entry.lint_errors == 0 && entry.lint_warnings == 0
                       ? "clean"
                       : strformat("%lldE/%lldW",
                                   static_cast<long long>(
                                       entry.lint_errors),
                                   static_cast<long long>(
                                       entry.lint_warnings));
        }
        std::vector<std::string> row;
        if (entry.status.isOk()) {
            row = {entry.job.model, entry.job.arch,
                   strformat("%.6g", entry.perf.latency_cycles),
                   strformat("%.6g", entry.perf.energy.total()),
                   strformat("%.4g", entry.perf.avg_power_mw),
                   strformat("%.1f%%",
                             entry.perf.crossbar_utilization * 100.0),
                   strformat("%lld",
                             static_cast<long long>(
                                 entry.flow_statements))};
            if (linted)
                row.push_back(lint);
            row.push_back(entry.tuned ? "tuned: " + entry.config
                                      : entry.config);
            row.push_back("ok");
        } else {
            row = {entry.job.model, entry.job.arch, "-", "-", "-", "-",
                   "-"};
            if (linted)
                row.push_back(lint);
            row.push_back("-");
            row.push_back(entry.status.toString());
        }
        table.addRow(row);
    }
    return table.render();
}

StatusOr<BatchResult>
BatchCompiler::run(const std::vector<BatchJob> &jobs) const
{
    if (jobs.empty())
        return invalidArgument("batch sweep has no jobs");

    BatchResult result;
    result.entries.resize(jobs.size());

    // One memo for the whole sweep: jobs that repeat a model x arch
    // pair reuse every candidate evaluation. Cached values are
    // bit-identical to fresh ones, so hits cannot perturb the output.
    TuneCache cache;
    const TuneContext tune{objective_, tune_ ? &cache : nullptr, budget_,
                           lint_, lint_strict_, perf_engine_};

    if (threads_ == 1) {
        // Serial reference path: the determinism tests compare against it.
        for (std::size_t i = 0; i < jobs.size(); ++i)
            compileJob(jobs[i], options_, tune, result.entries[i]);
        return result;
    }

    ThreadPool pool(threads_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([this, &jobs, &result, &tune, i] {
            compileJob(jobs[i], options_, tune, result.entries[i]);
        });
    }
    pool.wait();
    return result;
}

StatusOr<std::vector<BatchJob>>
BatchCompiler::crossProduct(const std::vector<std::string> &model_names,
                            const std::vector<std::string> &arch_names)
{
    if (model_names.empty())
        return invalidArgument("sweep needs at least one model");
    if (arch_names.empty())
        return invalidArgument("sweep needs at least one architecture");

    const std::vector<std::string> known = models::availableModels();
    for (const std::string &model : model_names) {
        if (std::find(known.begin(), known.end(), toLower(model))
            == known.end())
            return notFound("unknown model '" + model + "'");
    }
    for (const std::string &arch : arch_names) {
        auto preset = presets::byName(arch);
        if (!preset.isOk())
            return preset.status();
    }

    std::vector<BatchJob> jobs;
    jobs.reserve(model_names.size() * arch_names.size());
    for (const std::string &model : model_names)
        for (const std::string &arch : arch_names)
            jobs.push_back(BatchJob{model, arch});
    return jobs;
}

namespace {

StatusOr<BatchSweep>
sweepFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("sweep file must be a JSON object");

    auto readNames = [&doc](const char *key)
        -> StatusOr<std::vector<std::string>> {
        CIMMLC_ASSIGN_OR_RETURN(const ConfigValue list, doc.get(key));
        if (!list.isArray() || list.asArray().empty())
            return parseError(std::string("sweep '") + key
                              + "' must be a non-empty array of strings");
        std::vector<std::string> names;
        for (const ConfigValue &item : list.asArray()) {
            if (!item.isString())
                return parseError(std::string("sweep '") + key
                                  + "' entries must be strings");
            names.push_back(item.asString());
        }
        return names;
    };

    CIMMLC_ASSIGN_OR_RETURN(const std::vector<std::string> model_names,
                            readNames("models"));
    CIMMLC_ASSIGN_OR_RETURN(const std::vector<std::string> arch_names,
                            readNames("archs"));

    BatchSweep sweep;
    CIMMLC_ASSIGN_OR_RETURN(sweep.jobs, BatchCompiler::crossProduct(
                                            model_names, arch_names));
    CIMMLC_ASSIGN_OR_RETURN(
        sweep.options,
        scheduleOptionsByName(doc.getStringOr("opt", "full")));
    if (doc.getBoolOr("dual_mode", false))
        sweep.options.dual_mode = true;
    if (doc.getBoolOr("host_offload", false))
        sweep.options.host_offload = true;
    sweep.threads = static_cast<int>(doc.getIntOr("threads", 0));
    if (sweep.threads < 0)
        return invalidArgument("sweep 'threads' must be >= 0");
    sweep.tune = doc.getBoolOr("tune", false);
    CIMMLC_ASSIGN_OR_RETURN(
        sweep.objective,
        parseTuneObjective(doc.getStringOr("objective", "latency")));
    if (doc.has("budget")) {
        auto budget = searchBudgetFromConfig(doc.get("budget").value());
        if (!budget.isOk())
            return budget.status().withContext("sweep 'budget'");
        sweep.budget = budget.value();
    }
    sweep.lint_strict = doc.getBoolOr("lint_strict", false);
    sweep.lint = doc.getBoolOr("lint", false) || sweep.lint_strict;
    if (doc.has("perf_engine")) {
        auto engine = parsePerfEngineKind(
            doc.getStringOr("perf_engine", "closed_form"));
        if (!engine.isOk())
            return engine.status().withContext("sweep 'perf_engine'");
        sweep.perf_engine = engine.value();
    }
    return sweep;
}

} // namespace

StatusOr<BatchSweep>
sweepFromText(const std::string &text)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, parseConfig(text));
    return sweepFromConfig(doc);
}

StatusOr<BatchSweep>
sweepFromFile(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, loadConfigFile(path));
    return sweepFromConfig(doc);
}

} // namespace cimmlc
