#include "compiler/shard.h"

#include <algorithm>
#include <map>

#include "cache/artifact_cache.h"
#include "common/strutil.h"
#include "graph/models.h"
#include "graph/serialize.h"

namespace cimmlc {

namespace {

ConfigValue
number(double v)
{
    return ConfigValue::makeNumber(v);
}

ConfigValue
number(std::int64_t v)
{
    return ConfigValue::makeNumber(static_cast<double>(v));
}

ConfigValue
text(std::string v)
{
    return ConfigValue::makeString(std::move(v));
}

ConfigValue
statusToConfig(const Status &status)
{
    ConfigValue::Object doc;
    doc["code"] = number(static_cast<std::int64_t>(status.code()));
    doc["message"] = text(status.message());
    return ConfigValue::makeObject(std::move(doc));
}

Status
statusFromConfig(const ConfigValue &doc, Status *out)
{
    if (!doc.isObject())
        return parseError("shard entry 'status' must be an object");
    const std::int64_t code = doc.getIntOr("code", -1);
    if (code < 0 || code > static_cast<std::int64_t>(StatusCode::kParseError))
        return parseError(
            strformat("shard entry has unknown status code %lld",
                      static_cast<long long>(code)));
    if (code == 0)
        *out = Status::ok();
    else
        *out = Status(static_cast<StatusCode>(code),
                      doc.getStringOr("message", ""));
    return Status::ok();
}

ConfigValue
perfToConfig(const PerfReport &perf)
{
    ConfigValue::Object doc;
    doc["engine"] = text(perfEngineName(perf.engine));
    doc["latency_cycles"] = number(perf.latency_cycles);
    doc["reload_cycles"] = number(perf.reload_cycles);
    doc["xbar_pj"] = number(perf.energy.xbar_pj);
    doc["adc_dac_pj"] = number(perf.energy.adc_dac_pj);
    doc["movement_pj"] = number(perf.energy.movement_pj);
    doc["alu_pj"] = number(perf.energy.alu_pj);
    doc["write_pj"] = number(perf.energy.write_pj);
    doc["peak_power_mw"] = number(perf.peak_power_mw);
    doc["avg_power_mw"] = number(perf.avg_power_mw);
    doc["peak_active_xbs"] = number(perf.peak_active_xbs);
    doc["crossbars_mapped"] = number(perf.crossbars_mapped);
    doc["crossbar_utilization"] = number(perf.crossbar_utilization);
    doc["stall_cycles"] = number(perf.stall_cycles);
    return ConfigValue::makeObject(std::move(doc));
}

StatusOr<PerfReport>
perfFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("shard entry 'perf' must be an object");
    PerfReport perf;
    CIMMLC_ASSIGN_OR_RETURN(
        perf.engine,
        parsePerfEngineKind(doc.getStringOr("engine", "closed_form")));
    perf.latency_cycles = doc.getNumberOr("latency_cycles", 0.0);
    perf.reload_cycles = doc.getNumberOr("reload_cycles", 0.0);
    perf.energy.xbar_pj = doc.getNumberOr("xbar_pj", 0.0);
    perf.energy.adc_dac_pj = doc.getNumberOr("adc_dac_pj", 0.0);
    perf.energy.movement_pj = doc.getNumberOr("movement_pj", 0.0);
    perf.energy.alu_pj = doc.getNumberOr("alu_pj", 0.0);
    perf.energy.write_pj = doc.getNumberOr("write_pj", 0.0);
    perf.peak_power_mw = doc.getNumberOr("peak_power_mw", 0.0);
    perf.avg_power_mw = doc.getNumberOr("avg_power_mw", 0.0);
    perf.peak_active_xbs = doc.getIntOr("peak_active_xbs", 0);
    perf.crossbars_mapped = doc.getIntOr("crossbars_mapped", 0);
    perf.crossbar_utilization =
        doc.getNumberOr("crossbar_utilization", 0.0);
    perf.stall_cycles = doc.getNumberOr("stall_cycles", 0.0);
    return perf;
}

/** Shared shard-file envelope checks; returns the entries array. */
StatusOr<ConfigValue>
openShardFile(const std::string &path, const char *schema,
              const std::string &digest, std::size_t expected_units,
              std::vector<bool> &shard_seen)
{
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue doc, loadConfigFile(path));
    if (!doc.isObject()
        || doc.getStringOr("schema", "") != std::string(schema))
        return parseError("'" + path + "' is not a " + schema
                          + " shard file");
    if (doc.getStringOr("spec_digest", "") != digest)
        return invalidArgument(
            "'" + path
            + "' was produced from a different sweep spec (digest "
              "mismatch); all shards must run the same spec");
    const std::int64_t shards = doc.getIntOr("shards", 0);
    if (shards != static_cast<std::int64_t>(shard_seen.size()))
        return invalidArgument(strformat(
            "'%s' says %lld shards, but %zu shard files were given",
            path.c_str(), static_cast<long long>(shards),
            shard_seen.size()));
    const std::int64_t shard = doc.getIntOr("shard", -1);
    if (shard < 0 || shard >= shards)
        return parseError(
            strformat("'%s' has bad shard index %lld/%lld", path.c_str(),
                      static_cast<long long>(shard),
                      static_cast<long long>(shards)));
    if (shard_seen[static_cast<std::size_t>(shard)])
        return invalidArgument(
            strformat("shard %lld appears twice in the merge set",
                      static_cast<long long>(shard)));
    shard_seen[static_cast<std::size_t>(shard)] = true;
    if (doc.getIntOr("units", -1)
        != static_cast<std::int64_t>(expected_units))
        return invalidArgument(
            "'" + path + "' disagrees on the sweep's work-unit count");
    CIMMLC_ASSIGN_OR_RETURN(const ConfigValue entries,
                            doc.get("entries"));
    if (!entries.isArray())
        return parseError("'" + path + "' entries must be an array");
    return entries;
}

} // namespace

// ----- ShardSpec ------------------------------------------------------------

Status
ShardSpec::validate() const
{
    if (count < 1)
        return invalidArgument("shard count must be >= 1");
    if (index < 0 || index >= count)
        return invalidArgument(strformat(
            "shard index %d out of range for %d shards", index, count));
    return Status::ok();
}

StatusOr<ShardSpec>
parseShardSpec(const std::string &spec_text)
{
    const std::string trimmed{trim(spec_text)};
    const std::size_t slash = trimmed.find('/');
    const auto parse_int = [](const std::string &part,
                              int *out) -> bool {
        if (part.empty())
            return false;
        int value = 0;
        for (char c : part) {
            if (c < '0' || c > '9' || value > 1000000)
                return false;
            value = value * 10 + (c - '0');
        }
        *out = value;
        return true;
    };
    ShardSpec shard;
    if (slash == std::string::npos
        || !parse_int(trimmed.substr(0, slash), &shard.index)
        || !parse_int(trimmed.substr(slash + 1), &shard.count))
        return invalidArgument("bad shard spec '" + spec_text
                               + "' (expected I/N, e.g. 0/4)");
    CIMMLC_RETURN_IF_ERROR(shard.validate());
    return shard;
}

// ----- batch sharding -------------------------------------------------------

std::string
batchSweepDigest(const BatchSweep &sweep)
{
    ArtifactHash hash;
    hash.mix("cimmlc.batchshard.v1");
    hash.mix(static_cast<std::int64_t>(sweep.jobs.size()));
    for (const BatchJob &job : sweep.jobs) {
        hash.mix(job.model);
        hash.mix(job.arch);
    }
    hash.mix(sweep.options.toString());
    hash.mix(sweep.tune);
    hash.mix(tuneObjectiveName(sweep.objective));
    hash.mix(sweep.budget.toString());
    hash.mix(sweep.lint);
    hash.mix(sweep.lint_strict);
    hash.mix(perfEngineName(sweep.perf_engine));
    return hash.digest();
}

ConfigValue
batchShardToConfig(const BatchSweep &sweep, const ShardSpec &shard,
                   const std::vector<std::size_t> &indices,
                   const std::vector<BatchEntry> &entries)
{
    ConfigValue::Object doc;
    doc["schema"] = text(kBatchShardSchema);
    doc["spec_digest"] = text(batchSweepDigest(sweep));
    doc["shard"] = number(static_cast<std::int64_t>(shard.index));
    doc["shards"] = number(static_cast<std::int64_t>(shard.count));
    doc["units"] = number(static_cast<std::int64_t>(sweep.jobs.size()));
    ConfigValue::Array rows;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BatchEntry &entry = entries[i];
        ConfigValue::Object row;
        row["index"] = number(static_cast<std::int64_t>(indices[i]));
        row["model"] = text(entry.job.model);
        row["arch"] = text(entry.job.arch);
        row["status"] = statusToConfig(entry.status);
        row["nodes"] = number(entry.nodes);
        row["weights"] = number(entry.weights);
        row["flow_statements"] = number(entry.flow_statements);
        row["config"] = text(entry.config);
        row["tuned"] = ConfigValue::makeBool(entry.tuned);
        row["lint_errors"] = number(entry.lint_errors);
        row["lint_warnings"] = number(entry.lint_warnings);
        if (entry.status.isOk())
            row["perf"] = perfToConfig(entry.perf);
        rows.push_back(ConfigValue::makeObject(std::move(row)));
    }
    doc["entries"] = ConfigValue::makeArray(std::move(rows));
    return ConfigValue::makeObject(std::move(doc));
}

StatusOr<BatchResult>
mergeBatchShards(const BatchSweep &sweep,
                 const std::vector<std::string> &paths)
{
    if (paths.empty())
        return invalidArgument("merge needs at least one shard file");
    const std::string digest = batchSweepDigest(sweep);
    BatchResult result;
    result.entries.resize(sweep.jobs.size());
    std::vector<bool> filled(sweep.jobs.size(), false);
    std::vector<bool> shard_seen(paths.size(), false);

    for (const std::string &path : paths) {
        CIMMLC_ASSIGN_OR_RETURN(
            const ConfigValue entries,
            openShardFile(path, kBatchShardSchema, digest,
                          sweep.jobs.size(), shard_seen));
        for (const ConfigValue &row : entries.asArray()) {
            if (!row.isObject())
                return parseError("'" + path
                                  + "' has a non-object entry");
            const std::int64_t index = row.getIntOr("index", -1);
            if (index < 0
                || index >= static_cast<std::int64_t>(sweep.jobs.size()))
                return parseError(strformat(
                    "'%s' entry index %lld out of range", path.c_str(),
                    static_cast<long long>(index)));
            const auto at = static_cast<std::size_t>(index);
            if (filled[at])
                return invalidArgument(strformat(
                    "job %lld appears in more than one shard",
                    static_cast<long long>(index)));
            filled[at] = true;

            BatchEntry &entry = result.entries[at];
            entry.job.model = row.getStringOr("model", "");
            entry.job.arch = row.getStringOr("arch", "");
            if (entry.job.model != sweep.jobs[at].model
                || entry.job.arch != sweep.jobs[at].arch)
                return invalidArgument(strformat(
                    "'%s' entry %lld names job '%s x %s', spec says "
                    "'%s x %s'",
                    path.c_str(), static_cast<long long>(index),
                    entry.job.model.c_str(), entry.job.arch.c_str(),
                    sweep.jobs[at].model.c_str(),
                    sweep.jobs[at].arch.c_str()));
            CIMMLC_RETURN_IF_ERROR(statusFromConfig(
                row.has("status") ? row.get("status").value()
                                  : ConfigValue(),
                &entry.status));
            entry.nodes = row.getIntOr("nodes", 0);
            entry.weights = row.getIntOr("weights", 0);
            entry.flow_statements = row.getIntOr("flow_statements", 0);
            entry.config = row.getStringOr("config", "");
            entry.tuned = row.getBoolOr("tuned", false);
            entry.lint_errors = row.getIntOr("lint_errors", -1);
            entry.lint_warnings = row.getIntOr("lint_warnings", -1);
            if (entry.status.isOk()) {
                CIMMLC_ASSIGN_OR_RETURN(const ConfigValue perf,
                                        row.get("perf"));
                CIMMLC_ASSIGN_OR_RETURN(entry.perf,
                                        perfFromConfig(perf));
            }
        }
    }

    for (std::size_t i = 0; i < filled.size(); ++i) {
        if (!filled[i])
            return invalidArgument(strformat(
                "job %zu ('%s x %s') is covered by no shard file", i,
                sweep.jobs[i].model.c_str(), sweep.jobs[i].arch.c_str()));
    }
    return result;
}

// ----- arch-dse sharding ----------------------------------------------------

std::string
dseSpecDigest(const DseSpec &spec)
{
    ArtifactHash hash;
    hash.mix("cimmlc.dseshard.v1");
    hash.mix(spec.model);
    hash.mix(spec.model_file);
    hash.mix(spec.model_text);
    hash.mix(spec.base_arch.toString());
    hash.mix(spec.options.toString());
    hash.mix(spec.tune);
    hash.mix(tuneObjectiveName(spec.objective));
    hash.mix(spec.lint);
    hash.mix(perfEngineName(spec.perf_engine));
    hash.mix(spec.budget.toString());
    hash.mix(static_cast<std::int64_t>(spec.sweep.axes.size()));
    for (const ArchAxis &axis : spec.sweep.axes) {
        hash.mix(archParamName(axis.param));
        hash.mix(static_cast<std::int64_t>(axis.values.size()));
        for (const ArchParamValue &value : axis.values)
            hash.mix(archParamValueToString(axis.param, value));
    }
    return hash.digest();
}

Status
validateDseSpecForSharding(const DseSpec &spec)
{
    // One source of truth for the reason text: the dse layer owns the
    // adaptive-search rationale, the CLI shard path just surfaces it
    // at spec-parse time.
    return validateSpecForSharding(spec);
}

ConfigValue
dseShardToConfig(const DseSpec &spec, const ShardSpec &shard,
                 const DseResult &partial)
{
    ConfigValue::Object doc;
    doc["schema"] = text(kDseShardSchema);
    doc["spec_digest"] = text(dseSpecDigest(spec));
    doc["shard"] = number(static_cast<std::int64_t>(shard.index));
    doc["shards"] = number(static_cast<std::int64_t>(shard.count));
    doc["units"] =
        number(static_cast<std::int64_t>(spec.sweep.candidateCount()));
    ConfigValue::Array rows;
    for (const DseCandidate &candidate : partial.candidates) {
        if (!shard.owns(candidate.index))
            continue;
        ConfigValue::Object row;
        row["index"] =
            number(static_cast<std::int64_t>(candidate.index));
        row["status"] = statusToConfig(candidate.status);
        row["latency_cycles"] = number(candidate.latency_cycles);
        row["energy_pj"] = number(candidate.energy_pj);
        row["edp"] = number(candidate.edp);
        row["config"] = text(candidate.config);
        rows.push_back(ConfigValue::makeObject(std::move(row)));
    }
    doc["entries"] = ConfigValue::makeArray(std::move(rows));
    return ConfigValue::makeObject(std::move(doc));
}

StatusOr<DseResult>
mergeDseShards(const DseSpec &spec, const std::vector<std::string> &paths)
{
    CIMMLC_RETURN_IF_ERROR(validateDseSpecForSharding(spec));
    if (paths.empty())
        return invalidArgument("merge needs at least one shard file");

    // Labels, params, and candidate geometry never travel in shard
    // files — the merged result re-enumerates them from the spec, the
    // same deterministic row-major order every shard used.
    std::optional<Graph> loaded;
    if (!spec.model.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(loaded, models::byNameChecked(spec.model));
    } else if (!spec.model_file.empty()) {
        CIMMLC_ASSIGN_OR_RETURN(loaded, graphFromFile(spec.model_file));
    } else {
        CIMMLC_ASSIGN_OR_RETURN(loaded, graphFromText(spec.model_text));
    }
    const Graph &graph = *loaded;

    DseResult result;
    result.objective = spec.objective;
    result.workload = graph.name();
    result.nodes = static_cast<std::int64_t>(graph.nodeCount());
    result.weights = graph.totalWeights();
    result.base_arch = spec.base_arch.name;
    result.tuned = spec.tune;
    result.lint = spec.lint;
    result.perf_engine = spec.perf_engine;
    result.budget = spec.budget;
    result.candidates = ArchExplorer(spec).enumerate();

    // The single-process dedup keys exactly the candidates whose
    // *enumerated* geometry validated; remember that set before shard
    // results overwrite status with evaluation outcomes.
    std::vector<bool> keyed(result.candidates.size(), false);
    for (const DseCandidate &candidate : result.candidates)
        keyed[candidate.index] = candidate.status.isOk();

    const std::string digest = dseSpecDigest(spec);
    std::vector<bool> filled(result.candidates.size(), false);
    std::vector<bool> shard_seen(paths.size(), false);
    for (const std::string &path : paths) {
        CIMMLC_ASSIGN_OR_RETURN(
            const ConfigValue entries,
            openShardFile(path, kDseShardSchema, digest,
                          result.candidates.size(), shard_seen));
        for (const ConfigValue &row : entries.asArray()) {
            if (!row.isObject())
                return parseError("'" + path
                                  + "' has a non-object entry");
            const std::int64_t index = row.getIntOr("index", -1);
            if (index < 0
                || index
                       >= static_cast<std::int64_t>(
                           result.candidates.size()))
                return parseError(strformat(
                    "'%s' entry index %lld out of range", path.c_str(),
                    static_cast<long long>(index)));
            const auto at = static_cast<std::size_t>(index);
            if (filled[at])
                return invalidArgument(strformat(
                    "candidate %lld appears in more than one shard",
                    static_cast<long long>(index)));
            filled[at] = true;
            DseCandidate &candidate = result.candidates[at];
            CIMMLC_RETURN_IF_ERROR(statusFromConfig(
                row.has("status") ? row.get("status").value()
                                  : ConfigValue(),
                &candidate.status));
            candidate.latency_cycles =
                row.getNumberOr("latency_cycles", 0.0);
            candidate.energy_pj = row.getNumberOr("energy_pj", 0.0);
            candidate.edp = row.getNumberOr("edp", 0.0);
            candidate.config = row.getStringOr("config", "");
        }
    }
    for (std::size_t i = 0; i < filled.size(); ++i) {
        // Structurally invalid candidates (enumerate() marked them) are
        // not evaluated by any shard; everything else must be covered.
        if (!filled[i] && keyed[i])
            return invalidArgument(strformat(
                "candidate %zu is covered by no shard file", i));
    }

    // Replay the single-process duplicate-point dedup so the merged
    // hit accounting matches a cold single-process run byte for byte:
    // there, only the first occurrence of an aliased sweep point is
    // evaluated and every later one counts as a cache hit.
    std::map<std::string, std::size_t> first_of_key;
    std::int64_t duplicate_hits = 0;
    std::int64_t unique_keys = 0;
    for (DseCandidate &candidate : result.candidates) {
        if (!keyed[candidate.index])
            continue; // structurally invalid, never keyed
        std::string key = TuneCache::fingerprint(
            graph, candidate.arch,
            AutoTuner::encodeOptions(spec.options));
        if (spec.lint)
            key += "+lint";
        if (spec.perf_engine == PerfEngineKind::kEvent)
            key += "+engine:event";
        auto [it, inserted] =
            first_of_key.emplace(std::move(key), candidate.index);
        if (inserted) {
            ++unique_keys;
        } else {
            const DseCandidate &source = result.candidates[it->second];
            candidate.status = source.status;
            candidate.latency_cycles = source.latency_cycles;
            candidate.energy_pj = source.energy_pj;
            candidate.edp = source.edp;
            candidate.config = source.config;
            ++duplicate_hits;
        }
    }
    result.cache_hits = duplicate_hits;
    result.cache_entries = unique_keys;
    result.full_evals = unique_keys;
    result.proxy_evals = 0;
    result.rung_sizes = {unique_keys};

    result.front = paretoFrontIndices(result.candidates);
    for (std::size_t index : result.front)
        result.candidates[index].on_front = true;
    if (result.front.empty()) {
        Status first = internalError("empty sweep");
        for (const DseCandidate &candidate : result.candidates) {
            if (!candidate.status.isOk()) {
                first = candidate.status;
                break;
            }
        }
        return first.withContext(
            "arch-dse merge: no feasible candidate for '" + graph.name()
            + "' over base '" + spec.base_arch.name + "'");
    }
    return result;
}

} // namespace cimmlc
