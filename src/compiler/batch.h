/**
 * @file
 * BatchCompiler: design-space exploration over models x architectures.
 *
 * The paper's evaluation (Figures 21/22) sweeps networks across
 * architecture presets one compile at a time; BatchCompiler runs the
 * same sweep concurrently on a work-stealing pool and aggregates the
 * per-job performance reports into one table.
 *
 * Reentrancy: the whole compile path (scheduling, codegen, perfsim)
 * takes `const Graph &` / `const CimArchitecture &` and keeps no global
 * mutable state (logging counters are atomic), so concurrent jobs may
 * share one immutable CimArchitecture. Each job writes only its own
 * pre-allocated result slot, which makes the parallel run's output
 * byte-identical to the serial loop's.
 */
#ifndef CIMMLC_COMPILER_BATCH_H
#define CIMMLC_COMPILER_BATCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "compiler/session.h"
#include "perfsim/perf_model.h"
#include "sched/autotune.h"
#include "sched/options.h"

namespace cimmlc {

/** One (model, architecture) compile in a sweep; names are preset keys. */
struct BatchJob {
    std::string model; //!< models::byName key, e.g. "resnet18"
    std::string arch;  //!< presets::byName key, e.g. "isaac"
};

/** Outcome of one BatchJob. */
struct BatchEntry {
    BatchJob job;
    Status status;          //!< per-job result; perf is valid iff OK
    PerfReport perf;
    std::int64_t nodes = 0;   //!< workload graph size
    std::int64_t weights = 0; //!< workload weight count
    std::int64_t flow_statements = 0; //!< emitted meta-operator count
    std::string config;       //!< ScheduleOptions the job compiled with
    bool tuned = false;       //!< config came from the auto-tuner
    //! mopcheck findings; -1 = the lint stage did not run for this job
    std::int64_t lint_errors = -1;
    std::int64_t lint_warnings = -1;
};

/** Aggregated sweep results, in job-submission order. */
struct BatchResult {
    std::vector<BatchEntry> entries;

    /** Number of entries whose status is OK. */
    std::int64_t okCount() const;

    /** Renders the aggregated latency/energy table. */
    std::string table() const;
};

/** A sweep description parsed from a kvjson file (see sweepFromFile). */
struct BatchSweep {
    std::vector<BatchJob> jobs;
    ScheduleOptions options;
    int threads = 0; //!< 0 = one per hardware thread
    bool tune = false; //!< auto-tune each job ("tune": true)
    TuneObjective objective = TuneObjective::kLatency;
    //! per-job tuner evaluation budget ("budget": N or object); enables
    //! dominance pruning when tuning (see search/search_budget.h)
    SearchBudget budget;
    bool lint = false;        //!< mopcheck each job's flow ("lint": true)
    bool lint_strict = false; //!< lint errors fail the job ("lint_strict")
    //! perf engine every job prices with ("perf_engine": name)
    PerfEngineKind perf_engine = PerfEngineKind::kClosedForm;
};

/**
 * Compiles batches of (model, arch) jobs concurrently.
 *
 * @code
 *   BatchCompiler batch(ScheduleOptions::full(), 8);
 *   auto jobs = BatchCompiler::crossProduct({"resnet18", "vgg16"},
 *                                           {"isaac", "puma"});
 *   auto result = batch.run(jobs.value());
 *   std::cout << result.value().table();
 * @endcode
 */
class BatchCompiler
{
  public:
    /** @p threads: 0 = hardware concurrency, 1 = serial reference path. */
    explicit BatchCompiler(ScheduleOptions options = ScheduleOptions::full(),
                           int threads = 0)
        : options_(options), threads_(threads)
    {
    }

    const ScheduleOptions &options() const { return options_; }
    int threads() const { return threads_; }

    /**
     * Auto-tunes every job before compiling it: each job is compiled
     * with the configuration the AutoTuner selects for its (model,
     * arch) pair under @p objective instead of the fixed options. One
     * TuneCache is shared across the run, so jobs repeating a model x
     * arch pair reuse the evaluated candidates.
     */
    void
    setTuning(bool enabled,
              TuneObjective objective = TuneObjective::kLatency)
    {
        tune_ = enabled;
        objective_ = objective;
    }
    bool tuning() const { return tune_; }
    TuneObjective objective() const { return objective_; }

    /** Per-job tuner evaluation budget (only read when tuning). */
    void setSearchBudget(const SearchBudget &budget) { budget_ = budget; }
    const SearchBudget &searchBudget() const { return budget_; }

    /**
     * Runs mopcheck (mop/analyzer.h) on every job's emitted flow; the
     * per-job finding counts land in BatchEntry and the result table
     * grows a "lint" column. With @p strict, any error-severity finding
     * fails that job (the sweep itself still completes).
     */
    void
    setLint(bool enabled, bool strict = false)
    {
        lint_ = enabled || strict;
        lint_strict_ = strict;
    }
    bool linting() const { return lint_; }
    bool lintStrict() const { return lint_strict_; }

    /** Perf engine every job evaluates with (default closed_form). */
    void setPerfEngine(PerfEngineKind engine) { perf_engine_ = engine; }
    PerfEngineKind perfEngine() const { return perf_engine_; }

    /**
     * Runs every job; per-job failures (unknown name, infeasible
     * mapping) are recorded in the entry, not propagated. Entries are
     * always in @p jobs order regardless of thread timing. The call
     * itself only fails on an empty job list.
     */
    StatusOr<BatchResult> run(const std::vector<BatchJob> &jobs) const;

    /**
     * Builds the models x archs cross product, validating every name
     * up front (models::byName aborts on unknown names, so the batch
     * path must reject them before compiling).
     */
    static StatusOr<std::vector<BatchJob>>
    crossProduct(const std::vector<std::string> &model_names,
                 const std::vector<std::string> &arch_names);

  private:
    ScheduleOptions options_;
    int threads_;
    bool tune_ = false;
    TuneObjective objective_ = TuneObjective::kLatency;
    SearchBudget budget_;
    bool lint_ = false;
    bool lint_strict_ = false;
    PerfEngineKind perf_engine_ = PerfEngineKind::kClosedForm;
};

/**
 * Parses a sweep file:
 * @code
 *   {
 *     "models": ["resnet18", "vgg16"],  # required, model preset keys
 *     "archs": ["isaac", "puma"],       # required, arch preset keys
 *     "opt": "full",                    # none | cg | cg+mvm | full
 *     "dual_mode": false,               # per-segment resident arrays
 *     "host_offload": false,            # price digital runs on the host
 *     "threads": 0,                     # 0 = hardware concurrency
 *     "tune": false,                    # auto-tune each job's options
 *     "objective": "latency",           # latency | energy | edp
 *     "budget": 64,                     # tuner evaluation budget
 *     "lint": false,                    # mopcheck each job's flow
 *     "lint_strict": false,             # lint errors fail the job
 *     "perf_engine": "closed_form"      # closed_form | event
 *   }
 * @endcode
 *
 * "budget" takes a bare evaluation count or the object form
 * searchBudgetFromConfig accepts; it only applies to tuned sweeps.
 */
StatusOr<BatchSweep> sweepFromFile(const std::string &path);

/** Parses sweep text (same schema as sweepFromFile). */
StatusOr<BatchSweep> sweepFromText(const std::string &text);

} // namespace cimmlc

#endif // CIMMLC_COMPILER_BATCH_H
