/**
 * @file
 * The staged compilation-session API: one request/artifact pipeline
 * behind every entry point of the stack (CLI, batch sweeps, the
 * auto-tuner's candidate evaluation, and functional verification).
 *
 * A CompileRequest declaratively captures everything one compilation
 * needs — the workload (preset name, kvjson file/text, or a borrowed
 * Graph), the Abs-arch (preset name, kvjson file/text, or a borrowed
 * CimArchitecture), the optimization level or explicit ScheduleOptions,
 * auto-tuning, the thread budget, and which artifacts to materialize.
 * CompilerSession runs the paper's Figure 3 flow as named stages
 *
 *   load -> validate -> tune? -> schedule -> codegen -> lint? -> perf
 *        -> verify?
 *
 * through a small stage runner that records per-stage wall time and a
 * structured diagnostic line into CompileArtifacts, supports stopping
 * after any stage, and exposes an observer hook so callers can stream
 * progress (the CLI prints its header from it) without private copies
 * of the pipeline.
 *
 * @code
 *   CompileRequest request;
 *   request.model = "resnet18";
 *   request.arch = "isaac-baseline";
 *   CompilerSession session(std::move(request));
 *   auto artifacts = session.run();
 *   std::cout << artifacts.value().perf->toString() << "\n";
 *   std::cout << artifacts.value().toConfig().dump(true) << "\n";
 * @endcode
 */
#ifndef CIMMLC_COMPILER_SESSION_H
#define CIMMLC_COMPILER_SESSION_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "cache/artifact_cache.h"
#include "common/config.h"
#include "common/status.h"
#include "graph/graph.h"
#include "mop/analyzer.h"
#include "perfsim/perf_model.h"
#include "funcsim/verify.h"
#include "search/search_budget.h"
#include "sched/autotune.h"
#include "sched/codegen.h"
#include "sched/options.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Pipeline stages, in execution order. */
enum class CompileStage {
    kLoad,     //!< resolve workload and architecture from their sources
    kValidate, //!< structural graph and Abs-arch preconditions
    kTune,     //!< optional schedule auto-tuning (request.tune)
    kSchedule, //!< multi-level scheduling
    kCodegen,  //!< meta-operator flow generation (outputs.flow)
    kLint,     //!< mopcheck dataflow analysis of the flow (request.lint)
    kPerf,     //!< analytic performance evaluation (outputs.perf)
    kVerify,   //!< bit-exact functional verification (outputs.verify)
};

/** Stable stage name ("load", "validate", ...). */
const char *compileStageName(CompileStage stage);

/** Parses a stage name back into the enum (for config surfaces). */
StatusOr<CompileStage> parseCompileStage(const std::string &text);

/** Maps an --opt level name (none|cg|cg+mvm|full) to ScheduleOptions. */
StatusOr<ScheduleOptions> scheduleOptionsByName(const std::string &level);

/** Compressed (repeat-block) codegen: compact and costed, the default
 * for reporting pipelines; unroll for executable flows. */
inline CodegenOptions
compressedCodegenOptions()
{
    CodegenOptions options;
    options.unroll = false;
    return options;
}

/** Which artifacts the session materializes beyond the schedule. */
struct CompileOutputs {
    bool schedule_report = false; //!< render Schedule::summary text
    bool flow = true;             //!< run codegen (meta-operator flow)
    bool flow_text = false;       //!< render the flow as printable text
    std::int64_t flow_limit = 40; //!< statement cap for flow_text (0 = all)
    bool perf = true;             //!< run the performance model
    bool verify = false;          //!< run bit-exact functional verification
};

/**
 * Everything one compilation needs, declaratively.
 *
 * Workload: exactly one of {model, model_file, model_text, graph}.
 * Architecture: at most one of {arch, arch_file, arch_text, arch_ref};
 * all empty selects the "isaac-baseline" preset. Borrowed pointers are
 * not owned — the caller keeps them alive for the session's lifetime.
 */
struct CompileRequest {
    // ----- workload (exactly one source) --------------------------------
    std::string model;              //!< models::byName preset key
    std::string model_file;         //!< kvjson graph file path
    std::string model_text;         //!< inline kvjson graph
    const Graph *graph = nullptr;   //!< borrowed pre-built graph

    // ----- architecture (at most one source) ----------------------------
    std::string arch;                        //!< presets::byName key
    std::string arch_file;                   //!< kvjson Abs-arch file path
    std::string arch_text;                   //!< inline kvjson Abs-arch
    const CimArchitecture *arch_ref = nullptr; //!< borrowed architecture

    // ----- scheduling configuration -------------------------------------
    std::string opt = "full"; //!< none | cg | cg+mvm | full
    //! explicit options; set by programmatic callers, wins over opt
    std::optional<ScheduleOptions> options;

    //! host-CPU cost model for hybrid offload: prices digital regions
    //! whenever the effective options (or a tuned candidate) enable
    //! host_offload. The default model is part of the request identity
    //! only when it differs from HostModel{} (see HostModel::cacheTag).
    HostModel host_model;

    /**
     * Compile only the topological prefix holding the first N non-input
     * operators of the workload (0 = the whole graph) — the cheap proxy
     * fidelity the budgeted search engines price halving rungs with
     * (graph/analysis.h topoPrefix). The prefix is built by the load
     * stage, so every downstream stage (tune, schedule, perf) sees the
     * truncated workload; reports carry the "#prefixN" name marker.
     */
    std::int64_t workload_prefix_nodes = 0;

    // ----- auto-tuning ---------------------------------------------------
    bool tune = false;
    TuneObjective objective = TuneObjective::kLatency;
    TuneCache *tune_cache = nullptr; //!< optional shared memo (not owned)

    /**
     * Optional stage-level artifact cache (not owned). When set, every
     * stage after load derives a fingerprint key from its own inputs
     * (graph + arch digest, effective schedule options, codegen
     * parameters, upstream-stage keys) and replays a prior successful
     * result on a hit instead of recomputing — so a request that
     * changes one stage input re-runs only the invalidated suffix.
     * Replayed stages are tagged `cached` in their StageTrace and
     * report their replay wall time, not the original compute time.
     */
    ArtifactCache *artifact_cache = nullptr;
    //! evaluation budget for the tune stage: enables dominance pruning
    //! and caps candidate evaluations (see search/search_budget.h)
    SearchBudget search_budget;

    //! worker threads for the tune stage (0 = hardware concurrency)
    int threads = 0;

    // ----- static analysis (mopcheck) ------------------------------------
    //! run the mopcheck lint stage over the emitted flow (needs
    //! outputs.flow); findings land in CompileArtifacts::lint
    bool lint = false;
    //! fail the lint stage (nonzero session status) when mopcheck
    //! reports any error-severity finding; implies nothing extra when
    //! the flow is clean
    bool lint_strict = false;

    // ----- performance evaluation ----------------------------------------
    //! which engine the perf stage prices the workload with. kEvent
    //! needs the emitted flow, so codegen is auto-enabled for it even
    //! when outputs.flow is off.
    PerfEngineKind perf_engine = PerfEngineKind::kClosedForm;

    //! last stage to run; subsumes the old scheduleOnly entry point
    CompileStage stop_after = CompileStage::kVerify;

    std::uint64_t verify_seed = 1234; //!< stimulus seed for the verify stage
    CodegenOptions codegen = compressedCodegenOptions();
    CompileOutputs outputs;

    /** Structural validation (conflicting sources, bad opt name, ...). */
    Status validate() const;
};

/** One completed (or failed) stage of a session run. */
struct StageTrace {
    CompileStage stage = CompileStage::kLoad;
    Status status;
    double wall_ms = 0.0;  //!< wall-clock time the stage took; for a
                           //!< cached replay, the replay time itself
    std::string detail;    //!< one-line structured diagnostic
    bool cached = false;   //!< replayed from the stage artifact cache
};

/**
 * Everything a session run produces. Heavyweight artifacts are optional
 * and present iff their stage ran; `stages` records what ran, in order,
 * with per-stage wall time. toConfig() serializes the whole record as
 * kvjson — the CLI's `--report json` wire format.
 */
struct CompileArtifacts {
    // Workload / architecture identity (from the load stage).
    std::string workload;
    std::int64_t nodes = 0;
    std::int64_t weights = 0;
    std::string arch_name;
    std::string arch_mode;  //!< computing mode name (CM | XBM | WLM)
    std::string arch_text;  //!< CimArchitecture::toString render

    ScheduleOptions options; //!< configuration actually compiled with
    bool tuned = false;      //!< options came from the tune stage
    std::optional<TuneResult> tune;

    std::optional<Schedule> schedule;
    std::optional<CodegenResult> code;
    std::optional<AnalyzeResult> lint;
    std::optional<PerfReport> perf;
    std::optional<VerifyReport> verify;

    std::string schedule_report; //!< iff outputs.schedule_report
    std::string flow_text;       //!< iff outputs.flow_text

    std::vector<StageTrace> stages;

    /** Emitted meta-operator count (0 before codegen). */
    std::int64_t flowStatements() const;

    /** Serializes the report as a kvjson document (schema
     * "cimmlc.report.v1"): workload/arch identity, the chosen schedule
     * config, perf numbers, flow counts, verify outcome, and per-stage
     * wall times. */
    ConfigValue toConfig() const;
};

/**
 * Runs one CompileRequest through the staged pipeline.
 *
 * @code
 *   CompileRequest request;
 *   request.model = "lenet5";
 *   request.tune = true;
 *   CompilerSession session(std::move(request));
 *   session.setObserver([](const StageTrace &t, const CompileArtifacts &) {
 *       std::fprintf(stderr, "[%s] %.2f ms\n",
 *                    compileStageName(t.stage), t.wall_ms);
 *   });
 *   auto artifacts = session.run();
 * @endcode
 */
class CompilerSession
{
  public:
    //! called after every stage (including a failing one) with the trace
    //! just recorded and the artifacts built so far
    using StageObserver =
        std::function<void(const StageTrace &, const CompileArtifacts &)>;

    explicit CompilerSession(CompileRequest request)
        : request_(std::move(request))
    {
    }

    //! polled between stages; returning true aborts the run
    using CancelCheck = std::function<bool()>;

    const CompileRequest &request() const { return request_; }
    void setObserver(StageObserver observer)
    {
        observer_ = std::move(observer);
    }

    /**
     * Installs a cancellation poll. run() consults it before every
     * stage and aborts with kFailedPrecondition ("canceled") when it
     * returns true — the compile daemon uses this to stop a session
     * whose client disconnected mid-compile. Stages themselves are not
     * interrupted; cancellation lands at the next stage boundary.
     */
    void setCancelCheck(CancelCheck check)
    {
        cancel_check_ = std::move(check);
    }

    /**
     * Runs the enabled stages in order up to request.stop_after. A stage
     * failure aborts the run and returns that stage's Status with the
     * stage name as context; per-stage traces still reach the observer.
     */
    StatusOr<CompileArtifacts> run();

    /** Resolved workload/arch; valid once the load stage completed
     * (i.e. inside observer callbacks after kLoad, or after a
     * successful run()). */
    const Graph &graph() const { return *graph_; }
    const CimArchitecture &arch() const { return *arch_; }

    /** Stages with cached == true in the final trace (0 on a cold
     * run). The load stage always executes — it resolves the workload
     * and architecture the cache keys are derived from. */
    static std::size_t cachedStageCount(const CompileArtifacts &artifacts);

  private:
    bool stageEnabled(CompileStage stage) const;
    Status runStage(CompileStage stage, CompileArtifacts &artifacts);
    /** Cache key for @p stage from its own inputs; "" = not cacheable. */
    std::string stageKey(CompileStage stage,
                         const CompileArtifacts &artifacts) const;
    /** Copies a cached stage artifact back into @p artifacts and
     * re-renders any requested derived text (schedule report, flow
     * text) deterministically. Returns the replayed stage status. */
    Status replayStage(CompileStage stage,
                       const ArtifactCache::Entry &entry,
                       CompileArtifacts &artifacts);
    /** Stores a successful stage result under @p key. */
    void storeStage(CompileStage stage, const std::string &key,
                    double compute_ms, const CompileArtifacts &artifacts,
                    const std::string &detail);
    Status stageLoad(CompileArtifacts &artifacts, std::string &detail);
    Status stageValidate(std::string &detail);
    Status stageTune(CompileArtifacts &artifacts, std::string &detail);
    Status stageSchedule(CompileArtifacts &artifacts, std::string &detail);
    Status stageCodegen(CompileArtifacts &artifacts, std::string &detail);
    Status stageLint(CompileArtifacts &artifacts, std::string &detail);
    Status stagePerf(CompileArtifacts &artifacts, std::string &detail);
    Status stageVerify(CompileArtifacts &artifacts, std::string &detail);

    CompileRequest request_;
    StageObserver observer_;
    CancelCheck cancel_check_;
    std::optional<Graph> owned_graph_;
    std::optional<CimArchitecture> owned_arch_;
    const Graph *graph_ = nullptr;
    const CimArchitecture *arch_ = nullptr;
    //! graph + arch digest all stage keys chain from (set after load)
    std::string base_digest_;
};

} // namespace cimmlc

#endif // CIMMLC_COMPILER_SESSION_H
