#include "compiler/compiler.h"

namespace cimmlc {

StatusOr<CompileResult>
CimCompiler::compile(const Graph &graph,
                     const CodegenOptions &codegen) const
{
    CompileResult result;
    CIMMLC_ASSIGN_OR_RETURN(result.schedule,
                            scheduleGraph(graph, arch_, options_));
    CIMMLC_ASSIGN_OR_RETURN(
        result.code,
        generateProgram(graph, arch_, result.schedule, codegen));
    CIMMLC_ASSIGN_OR_RETURN(
        result.perf, evaluateSchedule(graph, arch_, result.schedule));
    return result;
}

StatusOr<Schedule>
CimCompiler::scheduleOnly(const Graph &graph) const
{
    return scheduleGraph(graph, arch_, options_);
}

} // namespace cimmlc
