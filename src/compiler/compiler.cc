#include "compiler/compiler.h"

#include "compiler/session.h"

namespace cimmlc {

StatusOr<CompileResult>
CimCompiler::compile(const Graph &graph,
                     const CodegenOptions &codegen) const
{
    CompileRequest request;
    request.graph = &graph;
    request.arch_ref = &arch_;
    request.options = options_;
    request.codegen = codegen;
    request.threads = 1;
    CompilerSession session(std::move(request));
    CIMMLC_ASSIGN_OR_RETURN(CompileArtifacts artifacts, session.run());
    CompileResult result;
    result.schedule = std::move(*artifacts.schedule);
    result.code = std::move(*artifacts.code);
    result.perf = *artifacts.perf;
    return result;
}

StatusOr<Schedule>
CimCompiler::scheduleOnly(const Graph &graph) const
{
    CompileRequest request;
    request.graph = &graph;
    request.arch_ref = &arch_;
    request.options = options_;
    request.threads = 1;
    request.stop_after = CompileStage::kSchedule;
    CompilerSession session(std::move(request));
    CIMMLC_ASSIGN_OR_RETURN(CompileArtifacts artifacts, session.run());
    return std::move(*artifacts.schedule);
}

} // namespace cimmlc
