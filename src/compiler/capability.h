/**
 * @file
 * Generality matrix (Table 1): which device types, programming
 * interfaces, and optimization granularities each compiler supports.
 * The CIM-MLC row is *demonstrated*, not asserted — probeCimMlc()
 * actually compiles a network on each device/interface combination.
 */
#ifndef CIMMLC_COMPILER_CAPABILITY_H
#define CIMMLC_COMPILER_CAPABILITY_H

#include <string>
#include <vector>

#include "common/status.h"

namespace cimmlc {

/** One row of the Table 1 comparison. */
struct CapabilityRow {
    std::string compiler;
    bool sram = false;
    bool reram = false;
    bool misc = false; //!< PCM / FLASH / STT-MRAM
    bool vvm = false;
    bool mvm = false;
    bool dnn_operator = false;
    std::string optimization_granularity;
};

/** Static rows for the prior work, as reported in Table 1. */
std::vector<CapabilityRow> priorWorkCapabilities();

/**
 * Probes this implementation: compiles a small CNN for every supported
 * cell type and computing mode and reports what succeeded.
 */
StatusOr<CapabilityRow> probeCimMlc();

/** Renders the full Table 1 as text. */
StatusOr<std::string> renderCapabilityTable();

} // namespace cimmlc

#endif // CIMMLC_COMPILER_CAPABILITY_H
