/**
 * @file
 * Cross-process sharding for `--batch` and `--arch-dse` sweeps.
 *
 * A sweep's work units already travel through deterministic kvjson
 * specs, so sharding is a pure index partition: shard i of N owns the
 * work units whose enumeration index satisfies `index % N == i`. Each
 * `cimmlc --shard i/N` process runs only its slice and serializes the
 * per-unit results (status, metrics, identity facts — every field the
 * aggregate table renders) to a shard file; `--merge-shards` validates
 * that the shard files cover every index of the same spec exactly once
 * and reassembles the aggregate result.
 *
 * Merge determinism: all numbers round-trip bit-exactly through kvjson
 * (doubles dump as %.17g), every work unit is evaluated by exactly one
 * shard, and the merged entries are re-ordered by enumeration index —
 * so the merged table (and, for DSE, the recomputed Pareto front) is
 * byte-identical to the single-process run's. DSE sharding requires an
 * exhaustive, untuned spec: successive-halving promotion and shared
 * tuner memo traffic are globally adaptive, so their per-shard results
 * could not merge deterministically.
 */
#ifndef CIMMLC_COMPILER_SHARD_H
#define CIMMLC_COMPILER_SHARD_H

#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "compiler/batch.h"
#include "dse/arch_explorer.h"

namespace cimmlc {

/** Shard file schema tags. */
constexpr const char *kBatchShardSchema = "cimmlc.batchshard.v1";
constexpr const char *kDseShardSchema = "cimmlc.dseshard.v1";

/** One process's slice of a sweep: indices with index % count == index_. */
struct ShardSpec {
    int index = 0; //!< this shard, in [0, count)
    int count = 1; //!< total shards; 1 = no sharding

    bool enabled() const { return count > 1; }
    bool owns(std::size_t work_index) const
    {
        return static_cast<int>(work_index % static_cast<std::size_t>(count))
               == index;
    }
    Status validate() const;
};

/** Parses "i/N" (e.g. "0/4"); requires 0 <= i < N and N >= 1. */
StatusOr<ShardSpec> parseShardSpec(const std::string &text);

// ----- batch sharding -------------------------------------------------------

/**
 * Digest of the resolved sweep a shard belongs to (jobs, options,
 * tuning, lint, engine) — merge refuses shards whose digests disagree,
 * so slices of different sweeps can never be silently combined.
 */
std::string batchSweepDigest(const BatchSweep &sweep);

/**
 * Serializes the entries this shard evaluated. @p entries holds the
 * shard-local results in slice order; @p indices maps each to its
 * position in the full job list.
 */
ConfigValue batchShardToConfig(const BatchSweep &sweep,
                               const ShardSpec &shard,
                               const std::vector<std::size_t> &indices,
                               const std::vector<BatchEntry> &entries);

/**
 * Merges shard files into the aggregate result. Validates every file's
 * schema and sweep digest, requires the shard set to cover every job
 * index exactly once, and returns entries in job order — byte-identical
 * to a single-process run of the same sweep.
 */
StatusOr<BatchResult>
mergeBatchShards(const BatchSweep &sweep,
                 const std::vector<std::string> &paths);

// ----- arch-dse sharding ----------------------------------------------------

/** Digest of the resolved DSE spec (workload, base arch, sweep axes,
 * options, engine, lint) a shard belongs to. */
std::string dseSpecDigest(const DseSpec &spec);

/** A spec must be exhaustive (no budget) and untuned to shard; the
 * error explains why otherwise. */
Status validateDseSpecForSharding(const DseSpec &spec);

/** Serializes the candidates this shard evaluated (slice of the
 * row-major enumeration). */
ConfigValue dseShardToConfig(const DseSpec &spec, const ShardSpec &shard,
                             const DseResult &partial);

/**
 * Merges DSE shard files: re-enumerates the candidate set from @p spec
 * locally (labels, params, and arch geometry never travel in shard
 * files), fills in each candidate's evaluated metrics from the shard
 * that owned it, replays the single-process duplicate-point dedup so
 * cache-hit accounting matches a cold single-process run, and
 * recomputes the Pareto front. Table, summary, and front are
 * byte-identical to the single-process run with a cold cache.
 */
StatusOr<DseResult> mergeDseShards(const DseSpec &spec,
                                   const std::vector<std::string> &paths);

} // namespace cimmlc

#endif // CIMMLC_COMPILER_SHARD_H
