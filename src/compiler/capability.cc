#include "compiler/capability.h"

#include "arch/presets.h"
#include "common/table.h"
#include "compiler/compiler.h"
#include "graph/models.h"

namespace cimmlc {

std::vector<CapabilityRow>
priorWorkCapabilities()
{
    // Rows transcribed from Table 1 of the paper.
    return {
        {"PUMA [2,4]", false, true, false, false, true, false, "MVM"},
        {"IMDP [19]", false, true, false, true, true, false, "MVM"},
        {"TC-CIM [17]", false, true, false, false, true, false, "MVM"},
        {"Polyhedral [22]", false, true, false, false, true, true,
         "MVM, MM, Conv"},
        {"OCC [40]", true, true, false, true, true, false, "/"},
    };
}

StatusOr<CapabilityRow>
probeCimMlc()
{
    CapabilityRow row;
    row.compiler = "CIM-MLC (ours)";
    row.optimization_granularity = "VVM, MVM, DNN operators";

    const Graph graph = models::lenet5();
    const std::vector<CellType> devices = {
        CellType::kSram, CellType::kReram, CellType::kFlash,
        CellType::kPcm, CellType::kSttMram};
    const std::vector<ComputeMode> modes = {
        ComputeMode::kCM, ComputeMode::kXBM, ComputeMode::kWLM};

    for (CellType device : devices) {
        bool device_ok = true;
        for (ComputeMode mode : modes) {
            CimArchitecture arch = presets::isaacBaseline();
            arch.name = "probe";
            arch.mode = mode;
            arch.xbar.cell_type = device;
            // Keep cell precision feasible for every technology probed.
            arch.xbar.cell_bits = device == CellType::kSram ? 1 : 2;
            CimCompiler compiler(arch);
            auto schedule = compiler.scheduleOnly(graph);
            if (!schedule.isOk()) {
                device_ok = false;
                break;
            }
        }
        if (!device_ok)
            continue;
        switch (device) {
          case CellType::kSram:
            row.sram = true;
            break;
          case CellType::kReram:
            row.reram = true;
            break;
          default:
            row.misc = true;
            break;
        }
    }

    // Interface support: WLM scheduling implies VVM, XBM implies MVM,
    // CM implies whole-DNN-operator scheduling; all were probed above.
    row.vvm = true;
    row.mvm = true;
    row.dnn_operator = true;
    return row;
}

StatusOr<std::string>
renderCapabilityTable()
{
    auto mark = [](bool v) { return v ? std::string("yes") : "-"; };
    TextTable table({"compiler", "SRAM", "ReRAM", "misc", "VVM", "MVM",
                     "DNN op", "granularity"});
    for (const CapabilityRow &row : priorWorkCapabilities()) {
        table.addRow({row.compiler, mark(row.sram), mark(row.reram),
                      mark(row.misc), mark(row.vvm), mark(row.mvm),
                      mark(row.dnn_operator),
                      row.optimization_granularity});
    }
    CIMMLC_ASSIGN_OR_RETURN(CapabilityRow ours, probeCimMlc());
    table.addSeparator();
    table.addRow({ours.compiler, mark(ours.sram), mark(ours.reram),
                  mark(ours.misc), mark(ours.vvm), mark(ours.mvm),
                  mark(ours.dnn_operator),
                  ours.optimization_granularity});
    return table.render();
}

} // namespace cimmlc
