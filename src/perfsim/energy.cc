#include "perfsim/energy.h"

#include "arch/device.h"
#include "arch/noc.h"

namespace cimmlc {

EnergyModel::EnergyModel(const CimArchitecture &arch)
{
    const DeviceProfile &device = deviceProfile(arch.xbar.cell_type);
    const PeripheralCosts &peripherals = defaultPeripheralCosts();

    // One activation phase reads parallel_row wordlines across every
    // physical column of the array.
    const double active_cells =
        static_cast<double>(arch.xbar.parallel_row) *
        static_cast<double>(arch.xbar.cols);
    xbar_activation_pj_ = active_cells * device.read_energy_pj;

    // One shared column ADC per crossbar (ISAAC-style time multiplexing)
    // plus DAC drivers on the active rows.
    conversion_pj_ =
        adcEnergyPj(arch.xbar.adc_bits) +
        dacEnergyPj(arch.xbar.dac_bits) *
            static_cast<double>(arch.xbar.parallel_row);

    const NocModel chip_noc = NocModel::forChip(arch);
    const double avg_hops =
        chip_noc.type() == NocType::kIdeal
            ? 0.0
            : static_cast<double>(chip_noc.diameter()) * 0.5;
    movement_pj_per_bit_ =
        peripherals.buffer_energy_pj_per_bit * 2.0 + // read + write
        peripherals.noc_energy_pj_per_bit_hop * avg_hops;
    movement_peak_mw_ =
        (arch.chip.l0_bandwidth > 0.0 ? arch.chip.l0_bandwidth : 0.0) *
        movement_pj_per_bit_;

    alu_pj_per_op_ = peripherals.alu_energy_pj_per_op;
    write_pj_per_cell_ = device.write_energy_pj;
}

double
EnergyModel::movementPj(double bits) const
{
    return bits * movement_pj_per_bit_;
}

double
EnergyModel::movementPeakPowerMw() const
{
    return movement_peak_mw_;
}

double
EnergyModel::aluPj(double ops) const
{
    return ops * alu_pj_per_op_;
}

double
EnergyModel::writePj(double cells) const
{
    return cells * write_pj_per_cell_;
}

} // namespace cimmlc
