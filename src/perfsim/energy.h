/**
 * @file
 * Energy and power model of a CIM accelerator, following the structure of
 * the PUMA-sim / NeuroSim / NVSim models the paper extends (Section 4.1):
 * crossbar cell reads, shared per-crossbar ADC, per-row DACs, buffer and
 * NoC data movement, and digital ALU ops. Cycle time is normalized to
 * 1 ns (1 GHz), so pJ/cycle equals mW.
 */
#ifndef CIMMLC_PERFSIM_ENERGY_H
#define CIMMLC_PERFSIM_ENERGY_H

#include <cstdint>

#include "arch/arch.h"

namespace cimmlc {

/** Per-category energy totals of one inference, in pJ. */
struct EnergyBreakdown {
    double xbar_pj = 0.0;     //!< analog array activation
    double adc_dac_pj = 0.0;  //!< signal conversion
    double movement_pj = 0.0; //!< buffers + NoC
    double alu_pj = 0.0;      //!< digital compute
    double write_pj = 0.0;    //!< weight programming

    double
    total() const
    {
        return xbar_pj + adc_dac_pj + movement_pj + alu_pj + write_pj;
    }
};

/** Precomputed per-event energies for one architecture. */
class EnergyModel
{
  public:
    explicit EnergyModel(const CimArchitecture &arch);

    /** Energy of one crossbar activation phase (one cycle), pJ. */
    double xbarActivationPj() const { return xbar_activation_pj_; }

    /** ADC + DAC energy of one activation phase, pJ. */
    double conversionPj() const { return conversion_pj_; }

    /** Instantaneous power of one active crossbar, mW (pJ/cycle). */
    double
    activeCrossbarPowerMw() const
    {
        return xbar_activation_pj_ + conversion_pj_;
    }

    /** Energy to move @p bits across the chip NoC + buffers, pJ. */
    double movementPj(double bits) const;

    /** Peak movement power given the L0 bandwidth, mW. */
    double movementPeakPowerMw() const;

    /** Energy of @p ops digital ALU operations, pJ. */
    double aluPj(double ops) const;

    /** Energy to program @p cells memory cells, pJ. */
    double writePj(double cells) const;

  private:
    double xbar_activation_pj_ = 0.0;
    double conversion_pj_ = 0.0;
    double movement_pj_per_bit_ = 0.0;
    double movement_peak_mw_ = 0.0;
    double alu_pj_per_op_ = 0.0;
    double write_pj_per_cell_ = 0.0;
};

} // namespace cimmlc

#endif // CIMMLC_PERFSIM_ENERGY_H
