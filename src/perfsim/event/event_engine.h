/**
 * @file
 * Discrete-event performance simulator: replays a meta-operator flow
 * against per-resource ready queues with occupancy-based contention,
 * in the style of computational-memory pipeline simulators.
 *
 * Where the trace engine (perfsim/trace_engine.h) starts every arm of
 * a `parallel { }` block at the same cycle regardless of what the arms
 * touch, this engine serializes ops that contend for the same physical
 * resource — a crossbar, a core, an L0/L1 buffer port, a NoC link, or
 * a tier ALU — and attributes the induced wait as stall cycles. On
 * contention-free single-core flows the two engines agree exactly; the
 * event engine is never faster than the trace.
 *
 * Determinism contract: simulation is single-threaded per program; the
 * global event queue is totally ordered by (time, resource, seq) with a
 * monotonic sequence counter, and per-resource waiter queues are
 * ordered by (ready_time, seq). Two runs over the same program and
 * architecture produce bit-identical reports.
 */
#ifndef CIMMLC_PERFSIM_EVENT_EVENT_ENGINE_H
#define CIMMLC_PERFSIM_EVENT_EVENT_ENGINE_H

#include <cstdint>
#include <vector>

#include "arch/arch.h"
#include "common/status.h"
#include "mop/program.h"
#include "perfsim/perf_model.h"

namespace cimmlc {

/** Results of one discrete-event simulation of a program. */
struct EventSimReport {
    double cycles = 0.0;      //!< makespan, init + compute
    double init_cycles = 0.0; //!< weight-programming prologue alone
    std::int64_t ops = 0;     //!< ops simulated (repeat bodies once)
    std::int64_t peak_active_xbs = 0;
    EnergyBreakdown energy;
    double peak_power_mw = 0.0;
    double avg_power_mw = 0.0;
    double stall_cycles = 0.0; //!< contention wait, repeat-weighted
    std::vector<ResourceUsage> resources; //!< per-class occupancy rows
};

/** Simulates @p program on @p arch with resource contention. */
StatusOr<EventSimReport> simulateProgramEvents(const MopProgram &program,
                                               const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_PERFSIM_EVENT_EVENT_ENGINE_H
