#include "perfsim/event/event_engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <map>
#include <queue>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "perfsim/trace_engine.h"

namespace cimmlc {

namespace {

/** Physical resource classes ops contend on, in report order. */
enum class ResClass : int {
    kCrossbar = 0, //!< one crossbar array (core, xb)
    kCore,         //!< a whole CM-mode core
    kL0Port,       //!< the chip-tier global buffer port
    kL1Port,       //!< one core's local buffer port
    kNocLink,      //!< the NoC link into one core's L1
    kAlu,          //!< the chip (-1) or core digital ALU
    kCount_,
};

constexpr std::array<const char *, static_cast<int>(ResClass::kCount_)>
    kResClassNames = {"xbar", "core", "l0", "l1", "noc", "alu"};

/** One queued op waiting for a resource grant. */
struct Waiter {
    double ready = 0.0; //!< fiber time when the request was made
    std::uint64_t seq = 0;
    int fiber = -1;
    const MetaOp *op = nullptr;
    double duration = 0.0;
    double multiplier = 1.0;
};

struct WaiterLater {
    bool
    operator()(const Waiter &a, const Waiter &b) const
    {
        if (a.ready != b.ready)
            return a.ready > b.ready;
        return a.seq > b.seq;
    }
};

struct Resource {
    ResClass cls = ResClass::kCrossbar;
    std::int64_t core = 0;
    std::int64_t index = 0;
    int ordinal = 0; //!< creation order; event tie-break rank
    double free_at = 0.0;
    bool in_flight = false;
    Waiter current; //!< the op being served while in_flight
    std::priority_queue<Waiter, std::vector<Waiter>, WaiterLater> waiters;
    // occupancy statistics (repeat-weighted)
    std::int64_t ops = 0;
    double busy = 0.0;
    double stall = 0.0;
};

/** One level of a fiber's walk through the statement tree. */
struct Frame {
    const Stmt *base = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;
    bool is_repeat = false;
    std::int64_t repeat_count = 1;
    double repeat_start = 0.0;
    double saved_multiplier = 1.0;
};

/**
 * A logical thread of execution: the program root, or one arm of a
 * `parallel { }` block. Suspends while an issued op awaits its grant.
 */
struct Fiber {
    std::vector<Frame> frames;
    double now = 0.0;
    double multiplier = 1.0;
    int parent = -1;
    int pending_children = 0;
    double join_end = 0.0;
    bool done = false;
};

/** Crossbar activation interval for the peak-power sweep. */
struct Interval {
    double start;
    double end;
    std::int64_t xbs;
};

struct Event {
    enum class Kind { kPump, kCompletion };

    double time = 0.0;
    int rank = 0; //!< resource ordinal + 1
    std::uint64_t seq = 0;
    Kind kind = Kind::kPump;
    int resource = -1;
};

struct EventLater {
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.time != b.time)
            return a.time > b.time;
        if (a.rank != b.rank)
            return a.rank > b.rank;
        return a.seq > b.seq;
    }
};

class EventSim
{
  public:
    explicit EventSim(const CimArchitecture &arch)
        : arch_(arch), energy_model_(arch)
    {
    }

    StatusOr<EventSimReport>
    run(const MopProgram &program)
    {
        double init_end = 0.0;
        CIMMLC_RETURN_IF_ERROR(runRegion(program.init(), 0.0, &init_end));
        double total_end = init_end;
        CIMMLC_RETURN_IF_ERROR(
            runRegion(program.compute(), init_end, &total_end));

        EventSimReport report;
        report.cycles = total_end;
        report.init_cycles = init_end;
        report.ops = sim_ops_;
        report.energy = energy_;
        report.stall_cycles = total_stall_;
        report.peak_active_xbs = sweepPeak();
        report.peak_power_mw =
            static_cast<double>(report.peak_active_xbs) *
                energy_model_.activeCrossbarPowerMw() +
            energy_model_.movementPeakPowerMw();
        if (total_end > 0.0)
            report.avg_power_mw = energy_.total() / total_end;
        aggregateResources(total_end, &report.resources);
        return report;
    }

  private:
    Status
    runRegion(const std::vector<Stmt> &stmts, double start, double *end)
    {
        root_end_ = start;
        const int fi = newFiber(start, 1.0, -1);
        if (!stmts.empty()) {
            Frame frame;
            frame.base = stmts.data();
            frame.count = stmts.size();
            fibers_[fi].frames.push_back(frame);
        }
        advance(fi);
        while (!events_.empty() && status_.isOk()) {
            const Event e = events_.top();
            events_.pop();
            if (e.kind == Event::Kind::kCompletion)
                handleCompletion(e.resource, e.time);
            else
                pump(e.resource, e.time);
        }
        CIMMLC_RETURN_IF_ERROR(status_);
        *end = std::max(*end, root_end_);
        return Status::ok();
    }

    int
    newFiber(double now, double multiplier, int parent)
    {
        Fiber f;
        f.now = now;
        f.multiplier = multiplier;
        f.parent = parent;
        const int fi = static_cast<int>(fibers_.size());
        fibers_.push_back(std::move(f));
        return fi;
    }

    /** Walks statements until the fiber issues an op or completes. */
    void
    advance(int fi)
    {
        for (;;) {
            if (!status_.isOk())
                return;
            Fiber &f = fibers_[fi];
            if (f.frames.empty()) {
                finishFiber(fi);
                return;
            }
            Frame &fr = f.frames.back();
            if (fr.next >= fr.count) {
                if (fr.is_repeat) {
                    // Iterations are sequential, so the resource state
                    // at each iteration start repeats: simulate the body
                    // once (energy/occupancy carry the multiplier) and
                    // extrapolate the remaining iterations by shifting
                    // time and the resources the body occupied.
                    const double period = f.now - fr.repeat_start;
                    f.now = fr.repeat_start +
                            period *
                                static_cast<double>(fr.repeat_count);
                    if (fr.repeat_count > 1 && period > 0.0)
                        shiftResources(
                            fr.repeat_start,
                            period * static_cast<double>(
                                         fr.repeat_count - 1));
                    f.multiplier = fr.saved_multiplier;
                }
                f.frames.pop_back();
                continue;
            }
            const Stmt &s = fr.base[fr.next++];
            switch (s.kind) {
              case Stmt::Kind::kOp:
                issueOp(fi, s.op);
                return;
              case Stmt::Kind::kParallel: {
                if (s.body.empty())
                    continue;
                f.pending_children = static_cast<int>(s.body.size());
                f.join_end = f.now;
                const double at = f.now;
                const double mult = f.multiplier;
                std::vector<int> children;
                children.reserve(s.body.size());
                for (const Stmt &arm : s.body) {
                    const int ci = newFiber(at, mult, fi);
                    Frame cf;
                    cf.base = &arm;
                    cf.count = 1;
                    fibers_[ci].frames.push_back(cf);
                    children.push_back(ci);
                }
                for (const int ci : children)
                    advance(ci);
                return;
              }
              case Stmt::Kind::kRepeat: {
                if (s.repeat <= 0 || s.body.empty())
                    continue;
                Frame rf;
                rf.base = s.body.data();
                rf.count = s.body.size();
                rf.is_repeat = true;
                rf.repeat_count = s.repeat;
                rf.repeat_start = f.now;
                rf.saved_multiplier = f.multiplier;
                // fr is invalidated by the push; refetched next round.
                f.multiplier *= static_cast<double>(s.repeat);
                f.frames.push_back(rf);
                continue;
              }
            }
            status_ = internalError("unhandled statement kind");
            return;
        }
    }

    void
    finishFiber(int fi)
    {
        Fiber &f = fibers_[fi];
        if (f.done)
            return;
        f.done = true;
        if (f.parent < 0) {
            root_end_ = std::max(root_end_, f.now);
            return;
        }
        Fiber &parent = fibers_[f.parent];
        parent.join_end = std::max(parent.join_end, f.now);
        if (--parent.pending_children == 0) {
            parent.now = parent.join_end;
            advance(f.parent);
        }
    }

    void
    issueOp(int fi, const MetaOp &op)
    {
        const int ri = resourceFor(op);
        Fiber &f = fibers_[fi];
        Resource &r = resources_[ri];
        Waiter w;
        w.ready = f.now;
        w.seq = seq_++;
        w.fiber = fi;
        w.op = &op;
        w.duration = metaOpDurationCycles(op, arch_);
        w.multiplier = f.multiplier;
        r.waiters.push(w);
        schedulePump(ri, std::max(f.now, r.free_at));
    }

    void
    schedulePump(int ri, double at)
    {
        events_.push({at, resources_[ri].ordinal + 1, seq_++,
                      Event::Kind::kPump, ri});
    }

    /** Grants the earliest-ready waiter if the resource is free. */
    void
    pump(int ri, double at)
    {
        Resource &r = resources_[ri];
        if (r.in_flight || r.waiters.empty())
            return;
        const Waiter &top = r.waiters.top();
        const double start_at = std::max(top.ready, r.free_at);
        if (start_at > at) {
            schedulePump(ri, start_at);
            return;
        }
        const Waiter w = top;
        r.waiters.pop();
        grant(ri, w, at);
    }

    void
    grant(int ri, const Waiter &w, double start)
    {
        Resource &r = resources_[ri];
        const double stall = (start - w.ready) * w.multiplier;
        r.stall += stall;
        total_stall_ += stall;
        r.busy += w.duration * w.multiplier;
        r.ops += std::llround(w.multiplier);
        r.free_at = start + w.duration;
        r.in_flight = true;
        r.current = w;
        ++sim_ops_;
        const std::int64_t xbs = metaOpActiveCrossbars(*w.op, arch_);
        if (xbs > 0)
            intervals_.push_back({start, start + w.duration, xbs});
        accountMetaOpEnergy(*w.op, w.duration, w.multiplier, arch_,
                            energy_model_, &energy_);
        events_.push({r.free_at, r.ordinal + 1, seq_++,
                      Event::Kind::kCompletion, ri});
    }

    void
    handleCompletion(int ri, double at)
    {
        Resource &r = resources_[ri];
        const int fi = r.current.fiber;
        r.in_flight = false;
        pump(ri, at);
        Fiber &f = fibers_[fi];
        f.now = std::max(f.now, at);
        advance(fi);
    }

    /** Extrapolates repeat iterations over the occupied resources. */
    void
    shiftResources(double after, double extra)
    {
        for (Resource &r : resources_) {
            if (r.free_at > after)
                r.free_at += extra;
        }
    }

    int
    resourceFor(const MetaOp &op)
    {
        ResClass cls = ResClass::kAlu;
        std::int64_t core = 0;
        std::int64_t index = 0;
        switch (op.kind) {
          case MetaOpKind::kReadXb:
          case MetaOpKind::kWriteXb:
          case MetaOpKind::kReadRow:
          case MetaOpKind::kWriteRow:
            cls = ResClass::kCrossbar;
            core = op.core;
            index = op.xb;
            break;
          case MetaOpKind::kReadCore:
          case MetaOpKind::kWriteCore:
            cls = ResClass::kCore;
            core = op.core;
            break;
          case MetaOpKind::kDcom:
            cls = ResClass::kAlu;
            if (op.dst.space == MemSpace::kL1)
                core = op.dst.core;
            else if (op.src.space == MemSpace::kL1)
                core = op.src.core;
            else
                core = -1; // chip-tier ALU
            break;
          case MetaOpKind::kMov: {
            const bool src_l1 = op.src.space == MemSpace::kL1;
            const bool dst_l1 = op.dst.space == MemSpace::kL1;
            if (!src_l1 && !dst_l1) {
                cls = ResClass::kL0Port;
                core = -1;
            } else if (src_l1 && dst_l1 &&
                       op.src.core == op.dst.core) {
                cls = ResClass::kL1Port;
                core = op.src.core;
            } else {
                // Cross-tier or cross-core: the NoC link into the L1
                // side (destination core when both ends are L1).
                cls = ResClass::kNocLink;
                core = dst_l1 ? op.dst.core : op.src.core;
            }
            break;
          }
        }
        const auto key =
            std::make_tuple(static_cast<int>(cls), core, index);
        const auto it = resource_index_.find(key);
        if (it != resource_index_.end())
            return it->second;
        Resource r;
        r.cls = cls;
        r.core = core;
        r.index = index;
        r.ordinal = static_cast<int>(resources_.size());
        const int ri = r.ordinal;
        resources_.push_back(std::move(r));
        resource_index_.emplace(key, ri);
        return ri;
    }

    std::int64_t
    sweepPeak() const
    {
        std::vector<std::pair<double, std::int64_t>> events;
        events.reserve(intervals_.size() * 2);
        for (const Interval &iv : intervals_) {
            events.emplace_back(iv.start, iv.xbs);
            events.emplace_back(iv.end, -iv.xbs);
        }
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second; // close before open
                  });
        std::int64_t current = 0;
        std::int64_t peak = 0;
        for (const auto &[time, delta] : events) {
            current += delta;
            peak = std::max(peak, current);
        }
        return peak;
    }

    void
    aggregateResources(double makespan,
                       std::vector<ResourceUsage> *rows) const
    {
        struct ClassAgg {
            std::int64_t instances = 0;
            std::int64_t ops = 0;
            double busy = 0.0;
            double stall = 0.0;
        };
        std::array<ClassAgg, static_cast<int>(ResClass::kCount_)> agg{};
        for (const Resource &r : resources_) {
            ClassAgg &a = agg[static_cast<int>(r.cls)];
            ++a.instances;
            a.ops += r.ops;
            a.busy += r.busy;
            a.stall += r.stall;
        }
        for (int c = 0; c < static_cast<int>(ResClass::kCount_); ++c) {
            const ClassAgg &a = agg[c];
            if (a.instances == 0)
                continue;
            ResourceUsage row;
            row.name = kResClassNames[c];
            row.instances = a.instances;
            row.ops = a.ops;
            row.busy_cycles = a.busy;
            row.stall_cycles = a.stall;
            if (makespan > 0.0)
                row.utilization =
                    a.busy /
                    (makespan * static_cast<double>(a.instances));
            rows->push_back(std::move(row));
        }
    }

    const CimArchitecture &arch_;
    EnergyModel energy_model_;
    Status status_ = Status::ok();

    std::deque<Fiber> fibers_;
    std::deque<Resource> resources_;
    std::map<std::tuple<int, std::int64_t, std::int64_t>, int>
        resource_index_;
    std::priority_queue<Event, std::vector<Event>, EventLater> events_;
    std::uint64_t seq_ = 0;
    double root_end_ = 0.0;

    std::vector<Interval> intervals_;
    EnergyBreakdown energy_;
    double total_stall_ = 0.0;
    std::int64_t sim_ops_ = 0;
};

} // namespace

StatusOr<EventSimReport>
simulateProgramEvents(const MopProgram &program,
                      const CimArchitecture &arch)
{
    EventSim sim(arch);
    return sim.run(program);
}

} // namespace cimmlc
