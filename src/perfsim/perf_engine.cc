#include "perfsim/perf_engine.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "perfsim/event/event_engine.h"

namespace cimmlc {

namespace {

class ClosedFormEngine final : public PerfEngine
{
  public:
    PerfEngineKind
    kind() const override
    {
        return PerfEngineKind::kClosedForm;
    }

    StatusOr<PerfReport>
    evaluate(const PerfInput &input) const override
    {
        if (!input.graph || !input.arch || !input.schedule)
            return invalidArgument(
                "closed-form perf engine needs graph, arch, and "
                "schedule");
        return evaluateSchedule(*input.graph, *input.arch,
                                *input.schedule);
    }
};

class EventEngine final : public PerfEngine
{
  public:
    PerfEngineKind
    kind() const override
    {
        return PerfEngineKind::kEvent;
    }

    StatusOr<PerfReport>
    evaluate(const PerfInput &input) const override
    {
        if (!input.arch || !input.program)
            return invalidArgument(
                "event perf engine needs arch and the emitted program "
                "(run codegen first)");
        CIMMLC_ASSIGN_OR_RETURN(
            EventSimReport sim,
            simulateProgramEvents(*input.program, *input.arch));
        PerfReport report;
        report.engine = PerfEngineKind::kEvent;
        report.latency_cycles = sim.cycles;
        report.reload_cycles = sim.init_cycles;
        report.energy = sim.energy;
        report.peak_power_mw = sim.peak_power_mw;
        report.avg_power_mw = sim.avg_power_mw;
        report.peak_active_xbs = sim.peak_active_xbs;
        report.stall_cycles = sim.stall_cycles;
        report.resources = std::move(sim.resources);
        // Mapping-side utilization comes from the schedule when the
        // caller has one; the simulator itself only sees the program.
        if (input.schedule) {
            for (const OperatorMapping &mapping : input.schedule->ops) {
                report.crossbars_mapped += mapping.totalCrossbars();
            }
            const std::int64_t total_xbs = input.arch->totalCrossbars();
            if (total_xbs > 0) {
                report.crossbar_utilization =
                    static_cast<double>(std::min<std::int64_t>(
                        report.crossbars_mapped, total_xbs)) /
                    static_cast<double>(total_xbs);
            }
        }
        return report;
    }
};

} // namespace

std::unique_ptr<PerfEngine>
makePerfEngine(PerfEngineKind kind)
{
    switch (kind) {
      case PerfEngineKind::kClosedForm:
        return std::make_unique<ClosedFormEngine>();
      case PerfEngineKind::kEvent:
        return std::make_unique<EventEngine>();
    }
    return std::make_unique<ClosedFormEngine>();
}

} // namespace cimmlc
