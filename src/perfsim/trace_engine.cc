#include "perfsim/trace_engine.h"

#include <algorithm>
#include <vector>

#include "arch/device.h"
#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"

namespace cimmlc {

std::string
TraceReport::toString() const
{
    return strformat(
        "trace: %.4g cycles, %lld ops, peak %lld active xbs, "
        "energy %.4g pJ, peak %.4g mW, avg %.4g mW",
        cycles, static_cast<long long>(ops),
        static_cast<long long>(peak_active_xbs), energy.total(),
        peak_power_mw, avg_power_mw);
}

double
metaOpDurationCycles(const MetaOp &op, const CimArchitecture &arch)
{
    const DeviceProfile &device = deviceProfile(arch.xbar.cell_type);
    const double dac_cycles =
        static_cast<double>(arch.dacCyclesPerActivation());
    switch (op.kind) {
      case MetaOpKind::kReadXb: {
        const std::int64_t groups = ceilDiv(
            std::max<std::int64_t>(op.rows, 1), arch.xbar.parallel_row);
        return dac_cycles * static_cast<double>(groups) *
               device.read_latency_cycles *
               static_cast<double>(std::max<std::int64_t>(op.len, 1));
      }
      case MetaOpKind::kReadRow:
        // One activation phase per DAC cycle; len <= parallel_row.
        return dac_cycles * device.read_latency_cycles;
      case MetaOpKind::kWriteXb:
        return static_cast<double>(
                   op.payload ? op.payload->shape().dim(0)
                              : arch.xbar.rows) *
               device.write_latency_cycles;
      case MetaOpKind::kWriteRow:
        return static_cast<double>(std::max<std::int64_t>(op.len, 1)) *
               device.write_latency_cycles;
      case MetaOpKind::kWriteCore:
        return static_cast<double>(arch.xbar.rows) *
               device.write_latency_cycles;
      case MetaOpKind::kReadCore: {
        const CoreOpParams &p = op.core_params;
        double windows = 1.0;
        std::int64_t matrix_rows = 1;
        if (p.is_conv) {
            const std::int64_t OW =
                convOutDim(p.in_w, p.kernel, p.stride, p.padding);
            const std::int64_t OH =
                convOutDim(p.in_h, p.kernel, p.stride, p.padding);
            const std::int64_t w1 = p.win_end > 0 ? p.win_end : OH;
            windows = static_cast<double>((w1 - p.win_begin) * OW);
            matrix_rows = p.in_channels * p.kernel * p.kernel;
        } else {
            const std::int64_t w1 = p.win_end > 0 ? p.win_end : 1;
            windows = static_cast<double>(w1 - p.win_begin);
            matrix_rows = p.in_features;
        }
        const std::int64_t rows_used =
            std::min(matrix_rows, arch.xbar.rows);
        const std::int64_t groups =
            ceilDiv(rows_used, arch.xbar.parallel_row);
        return windows * dac_cycles * static_cast<double>(groups) *
               device.read_latency_cycles;
      }
      case MetaOpKind::kMov: {
        const double bits = static_cast<double>(op.len * op.count) *
                            arch.activation_bits;
        double bw = arch.chip.l0_bandwidth;
        if (op.src.space == MemSpace::kL1 ||
            op.dst.space == MemSpace::kL1) {
            if (arch.core.l1_bandwidth > 0.0) {
                bw = bw > 0.0 ? std::min(bw, arch.core.l1_bandwidth)
                              : arch.core.l1_bandwidth;
            }
        }
        if (bw <= 0.0)
            return 1.0; // ideal buffers: single-cycle issue
        return std::max(1.0, bits / bw);
      }
      case MetaOpKind::kDcom: {
        const double rate = arch.chip.alu_ops_per_cycle;
        if (rate <= 0.0)
            return 1.0;
        return std::max(1.0, static_cast<double>(op.len) / rate);
      }
    }
    return 1.0;
}

std::int64_t
metaOpActiveCrossbars(const MetaOp &op, const CimArchitecture &arch)
{
    switch (op.kind) {
      case MetaOpKind::kReadXb:
        return std::max<std::int64_t>(op.len, 1);
      case MetaOpKind::kReadRow:
        return 1;
      case MetaOpKind::kReadCore:
        // A CM core activation drives the core's crossbars for the
        // whole duration.
        return arch.core.xbNumber();
      default:
        return 0;
    }
}

void
accountMetaOpEnergy(const MetaOp &op, double duration, double multiplier,
                    const CimArchitecture &arch, const EnergyModel &model,
                    EnergyBreakdown *energy)
{
    switch (op.kind) {
      case MetaOpKind::kReadXb:
      case MetaOpKind::kReadRow:
      case MetaOpKind::kReadCore: {
        const std::int64_t xbs = metaOpActiveCrossbars(op, arch);
        const double phases =
            duration /
            deviceProfile(arch.xbar.cell_type).read_latency_cycles;
        energy->xbar_pj += multiplier * phases *
                           static_cast<double>(xbs) *
                           model.xbarActivationPj();
        energy->adc_dac_pj += multiplier * phases *
                              static_cast<double>(xbs) *
                              model.conversionPj();
        break;
      }
      case MetaOpKind::kWriteXb:
      case MetaOpKind::kWriteRow:
      case MetaOpKind::kWriteCore: {
        double cells = 0.0;
        if (op.payload) {
            cells = static_cast<double>(op.payload->numel()) *
                    static_cast<double>(arch.cellsPerWeight());
        } else {
            cells = static_cast<double>(arch.xbar.rows *
                                        arch.xbar.cols);
        }
        energy->write_pj += multiplier * model.writePj(cells);
        break;
      }
      case MetaOpKind::kMov: {
        const double bits = static_cast<double>(op.len * op.count) *
                            arch.activation_bits;
        energy->movement_pj += multiplier * model.movementPj(bits);
        break;
      }
      case MetaOpKind::kDcom: {
        energy->alu_pj +=
            multiplier * model.aluPj(static_cast<double>(op.len));
        break;
      }
    }
}

namespace {

/** Crossbar activation interval for the peak sweep. */
struct Interval {
    double start;
    double end;
    std::int64_t xbs;
};

class Tracer
{
  public:
    Tracer(const CimArchitecture &arch)
        : arch_(arch), energy_model_(arch)
    {
    }

    StatusOr<TraceReport>
    run(const MopProgram &program)
    {
        double t = 0.0;
        CIMMLC_RETURN_IF_ERROR(execStmts(program.init(), &t, 1.0));
        CIMMLC_RETURN_IF_ERROR(execStmts(program.compute(), &t, 1.0));

        TraceReport report;
        report.cycles = t;
        report.ops = ops_;
        report.energy = energy_;
        report.peak_active_xbs = sweepPeak();
        report.peak_power_mw =
            static_cast<double>(report.peak_active_xbs) *
                energy_model_.activeCrossbarPowerMw() +
            energy_model_.movementPeakPowerMw();
        if (t > 0.0)
            report.avg_power_mw = energy_.total() / t;
        return report;
    }

  private:
    Status
    execStmts(const std::vector<Stmt> &stmts, double *t,
              double multiplier)
    {
        for (const Stmt &stmt : stmts)
            CIMMLC_RETURN_IF_ERROR(execStmt(stmt, t, multiplier));
        return Status::ok();
    }

    Status
    execStmt(const Stmt &stmt, double *t, double multiplier)
    {
        switch (stmt.kind) {
          case Stmt::Kind::kOp: {
            const double duration =
                metaOpDurationCycles(stmt.op, arch_);
            account(stmt.op, *t, duration, multiplier);
            *t += duration;
            return Status::ok();
          }
          case Stmt::Kind::kParallel: {
            const double start = *t;
            double end = start;
            for (const Stmt &child : stmt.body) {
                double child_t = start;
                CIMMLC_RETURN_IF_ERROR(
                    execStmt(child, &child_t, multiplier));
                end = std::max(end, child_t);
            }
            *t = end;
            return Status::ok();
          }
          case Stmt::Kind::kRepeat: {
            if (stmt.repeat <= 0)
                return Status::ok();
            // Measure one iteration, scale time and energy by the
            // count; intervals of one iteration represent the peak.
            const double start = *t;
            CIMMLC_RETURN_IF_ERROR(
                execStmts(stmt.body, t,
                          multiplier * static_cast<double>(stmt.repeat)));
            const double body = *t - start;
            *t = start + body * static_cast<double>(stmt.repeat);
            return Status::ok();
          }
        }
        return internalError("unhandled statement kind");
    }

    void
    account(const MetaOp &op, double start, double duration,
            double multiplier)
    {
        ++ops_;
        const std::int64_t xbs = metaOpActiveCrossbars(op, arch_);
        if (xbs > 0)
            intervals_.push_back({start, start + duration, xbs});
        accountMetaOpEnergy(op, duration, multiplier, arch_,
                            energy_model_, &energy_);
    }

    std::int64_t
    sweepPeak() const
    {
        // Sweep-line over activation intervals.
        std::vector<std::pair<double, std::int64_t>> events;
        events.reserve(intervals_.size() * 2);
        for (const Interval &iv : intervals_) {
            events.emplace_back(iv.start, iv.xbs);
            events.emplace_back(iv.end, -iv.xbs);
        }
        std::sort(events.begin(), events.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second; // close before open
                  });
        std::int64_t current = 0;
        std::int64_t peak = 0;
        for (const auto &[time, delta] : events) {
            current += delta;
            peak = std::max(peak, current);
        }
        return peak;
    }

    const CimArchitecture &arch_;
    EnergyModel energy_model_;
    std::vector<Interval> intervals_;
    EnergyBreakdown energy_;
    std::int64_t ops_ = 0;
};

} // namespace

StatusOr<TraceReport>
traceProgram(const MopProgram &program, const CimArchitecture &arch)
{
    Tracer tracer(arch);
    return tracer.run(program);
}

} // namespace cimmlc
