/**
 * @file
 * Analytic performance evaluation of a compiled schedule: latency,
 * energy breakdown, peak and average power — the role of the extended
 * PUMA-sim / NeuroSim performance simulator in Section 4.1.
 */
#ifndef CIMMLC_PERFSIM_PERF_MODEL_H
#define CIMMLC_PERFSIM_PERF_MODEL_H

#include <string>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "perfsim/energy.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Aggregate results of one inference under a schedule. */
struct PerfReport {
    double latency_cycles = 0.0;
    double reload_cycles = 0.0;
    EnergyBreakdown energy;
    double peak_power_mw = 0.0;
    double avg_power_mw = 0.0;
    std::int64_t peak_active_xbs = 0;
    std::int64_t crossbars_mapped = 0; //!< arrays holding weights
    double crossbar_utilization = 0.0; //!< mapped / available

    std::string toString() const;
};

/** Evaluates @p schedule for a single inference of @p graph. */
StatusOr<PerfReport> evaluateSchedule(const Graph &graph,
                                      const CimArchitecture &arch,
                                      const Schedule &schedule);

} // namespace cimmlc

#endif // CIMMLC_PERFSIM_PERF_MODEL_H
