/**
 * @file
 * Analytic performance evaluation of a compiled schedule: latency,
 * energy breakdown, peak and average power — the role of the extended
 * PUMA-sim / NeuroSim performance simulator in Section 4.1.
 *
 * Also home of the PerfReport both perf engines produce and the
 * PerfEngineKind vocabulary: the closed-form model here is one engine,
 * the discrete-event simulator (perfsim/event/event_engine.h) the
 * other, both behind the PerfEngine interface in perfsim/perf_engine.h.
 */
#ifndef CIMMLC_PERFSIM_PERF_MODEL_H
#define CIMMLC_PERFSIM_PERF_MODEL_H

#include <string>
#include <vector>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "perfsim/energy.h"
#include "sched/schedule.h"

namespace cimmlc {

/** Which performance engine produced a report. */
enum class PerfEngineKind {
    kClosedForm, //!< analytic per-window formulas (evaluateSchedule)
    kEvent,      //!< discrete-event simulation with resource contention
};

/** Stable engine name ("closed_form" | "event"). */
const char *perfEngineName(PerfEngineKind kind);

/** Parses an engine name back into the enum (CLI / config surfaces). */
StatusOr<PerfEngineKind> parsePerfEngineKind(const std::string &text);

/**
 * Occupancy statistics of one simulated resource class (crossbars,
 * cores, buffer ports, NoC links, ALUs). Only the event engine fills
 * these; the closed-form model has no notion of per-resource time.
 */
struct ResourceUsage {
    std::string name;           //!< class name ("xbar", "noc", ...)
    std::int64_t instances = 0; //!< distinct resources of the class used
    std::int64_t ops = 0;       //!< operations served (repeat-weighted)
    double busy_cycles = 0.0;   //!< occupied time, summed over instances
    double stall_cycles = 0.0;  //!< contention wait charged to the class
    double utilization = 0.0;   //!< busy / (makespan * instances)
};

/** Aggregate results of one inference under a schedule. */
struct PerfReport {
    //! which engine produced the numbers below
    PerfEngineKind engine = PerfEngineKind::kClosedForm;
    double latency_cycles = 0.0;
    double reload_cycles = 0.0;
    EnergyBreakdown energy;
    double peak_power_mw = 0.0;
    double avg_power_mw = 0.0;
    std::int64_t peak_active_xbs = 0;
    std::int64_t crossbars_mapped = 0; //!< arrays holding weights
    double crossbar_utilization = 0.0; //!< mapped / available

    // ----- event-engine extras (empty/zero for closed_form) -------------
    //! total contention wait across all resources, repeat-weighted
    double stall_cycles = 0.0;
    //! per-resource-class occupancy rows, in canonical class order
    std::vector<ResourceUsage> resources;

    std::string toString() const;
};

/** Evaluates @p schedule for a single inference of @p graph. */
StatusOr<PerfReport> evaluateSchedule(const Graph &graph,
                                      const CimArchitecture &arch,
                                      const Schedule &schedule);

} // namespace cimmlc

#endif // CIMMLC_PERFSIM_PERF_MODEL_H
