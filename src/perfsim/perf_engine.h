/**
 * @file
 * The PerfEngine interface: one abstraction over the two ways the
 * stack prices a compiled workload — the closed-form analytic model
 * (perf_model.h, fast, contention-blind) and the discrete-event
 * simulator (event/event_engine.h, contention-aware). Callers pick an
 * engine by PerfEngineKind and evaluate through the interface; the
 * budgeted DSE uses closed_form as the cheap proxy rung below event.
 */
#ifndef CIMMLC_PERFSIM_PERF_ENGINE_H
#define CIMMLC_PERFSIM_PERF_ENGINE_H

#include <memory>

#include "arch/arch.h"
#include "common/status.h"
#include "graph/graph.h"
#include "mop/program.h"
#include "perfsim/perf_model.h"
#include "sched/schedule.h"

namespace cimmlc {

/**
 * Everything a perf engine may consume. Closed-form needs graph, arch,
 * and schedule; the event engine needs arch and the emitted program
 * (schedule is optional and only feeds the mapping-utilization fields).
 */
struct PerfInput {
    const Graph *graph = nullptr;
    const CimArchitecture *arch = nullptr;
    const Schedule *schedule = nullptr;
    const MopProgram *program = nullptr;
};

/** Abstract performance engine. Implementations are stateless. */
class PerfEngine
{
  public:
    virtual ~PerfEngine() = default;

    /** Which engine this is (tags the produced reports). */
    virtual PerfEngineKind kind() const = 0;

    /** Prices one inference of the compiled workload. */
    virtual StatusOr<PerfReport> evaluate(const PerfInput &input)
        const = 0;
};

/** Builds the engine for @p kind. Never returns null. */
std::unique_ptr<PerfEngine> makePerfEngine(PerfEngineKind kind);

} // namespace cimmlc

#endif // CIMMLC_PERFSIM_PERF_ENGINE_H
