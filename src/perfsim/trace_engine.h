/**
 * @file
 * Event-driven trace engine: replays a meta-operator flow with per-op
 * timing, tracks crossbar activation intervals for peak-power analysis,
 * and accumulates energy. This is the fine-grained counterpart to the
 * analytic model in perf_model.h — the two are cross-checked in the test
 * suite on small networks.
 *
 * Timing semantics:
 *  - sequential statements advance the time cursor by each op's duration;
 *  - a parallel block starts all members at the same cycle and completes
 *    at the latest member (the paper's `parallel { }` label);
 *  - repeat blocks are measured once and scaled — activation peaks inside
 *    one iteration are representative of all iterations.
 */
#ifndef CIMMLC_PERFSIM_TRACE_ENGINE_H
#define CIMMLC_PERFSIM_TRACE_ENGINE_H

#include <string>

#include "arch/arch.h"
#include "common/status.h"
#include "mop/program.h"
#include "perfsim/energy.h"

namespace cimmlc {

/** Results of one traced execution. */
struct TraceReport {
    double cycles = 0.0;
    std::int64_t ops = 0;
    std::int64_t peak_active_xbs = 0;
    EnergyBreakdown energy;
    double peak_power_mw = 0.0;
    double avg_power_mw = 0.0;

    std::string toString() const;
};

/** Per-op duration model used by the engine (exposed for tests). */
double metaOpDurationCycles(const MetaOp &op, const CimArchitecture &arch);

/** Crossbars @p op holds active for its whole duration (0 for non-read
 * ops) — the contribution to the peak-power sweep. */
std::int64_t metaOpActiveCrossbars(const MetaOp &op,
                                   const CimArchitecture &arch);

/**
 * Accumulates @p op's energy into @p energy, weighted by @p multiplier
 * (the product of enclosing repeat counts). Shared by the trace walk
 * and the discrete-event engine (perfsim/event/event_engine.h), so the
 * two price energy identically and differ only in timing.
 */
void accountMetaOpEnergy(const MetaOp &op, double duration,
                         double multiplier, const CimArchitecture &arch,
                         const EnergyModel &model,
                         EnergyBreakdown *energy);

/** Traces @p program on @p arch. */
StatusOr<TraceReport> traceProgram(const MopProgram &program,
                                   const CimArchitecture &arch);

} // namespace cimmlc

#endif // CIMMLC_PERFSIM_TRACE_ENGINE_H
