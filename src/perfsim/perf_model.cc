#include "perfsim/perf_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/mathutil.h"
#include "common/strutil.h"
#include "graph/analysis.h"

namespace cimmlc {

const char *
perfEngineName(PerfEngineKind kind)
{
    switch (kind) {
      case PerfEngineKind::kClosedForm: return "closed_form";
      case PerfEngineKind::kEvent: return "event";
    }
    return "?";
}

StatusOr<PerfEngineKind>
parsePerfEngineKind(const std::string &text)
{
    const std::string key = toLower(trim(text));
    for (PerfEngineKind kind :
         {PerfEngineKind::kClosedForm, PerfEngineKind::kEvent}) {
        if (key == perfEngineName(kind))
            return kind;
    }
    return invalidArgument("unknown perf engine '" + text
                           + "' (expected closed_form | event)");
}

std::string
PerfReport::toString() const
{
    std::string line = strformat(
        "latency %.4g cycles (reload %.3g), energy %.4g pJ "
        "(xb %.3g, adc/dac %.3g, mov %.3g, alu %.3g, write %.3g), "
        "peak %.4g mW / avg %.4g mW, peak-active %lld xbs, "
        "mapped %lld xbs (%.1f%%)",
        latency_cycles, reload_cycles, energy.total(), energy.xbar_pj,
        energy.adc_dac_pj, energy.movement_pj, energy.alu_pj,
        energy.write_pj, peak_power_mw, avg_power_mw,
        static_cast<long long>(peak_active_xbs),
        static_cast<long long>(crossbars_mapped),
        crossbar_utilization * 100.0);
    // Closed-form renders keep their historical shape; only the event
    // engine appends its identity and contention summary.
    if (engine == PerfEngineKind::kEvent)
        line += strformat(" [engine event, stall %.4g cycles]",
                          stall_cycles);
    return line;
}

StatusOr<PerfReport>
evaluateSchedule(const Graph &graph, const CimArchitecture &arch,
                 const Schedule &schedule)
{
    const EnergyModel energy_model(arch);
    PerfReport report;
    report.latency_cycles = schedule.total_latency_cycles;
    report.reload_cycles = schedule.total_reload_cycles;
    report.peak_active_xbs = schedule.peak_active_xbs;

    for (const OperatorMapping &mapping : schedule.ops) {
        const Node &node = graph.node(mapping.node);
        if (mapping.is_cim) {
            const auto matrix = weightMatrixShape(graph, mapping.node);
            const double windows =
                static_cast<double>(mapping.windows);
            // Activation phases per window: bit-serial DAC cycles times
            // the serial row groups. The VVM remap runs groups on
            // different arrays concurrently — it changes latency, not
            // the total number of group activations, so energy uses the
            // pre-remap count.
            const std::int64_t rows_used =
                std::min(matrix->rows, arch.xbar.rows);
            const std::int64_t groups =
                ceilDiv(rows_used, arch.xbar.parallel_row);
            const double phases_per_window =
                static_cast<double>(arch.dacCyclesPerActivation()) *
                static_cast<double>(groups);
            // Every tile of the replica fires for each window;
            // duplication does not change total work, only time.
            const double xb_activations =
                windows * phases_per_window *
                static_cast<double>(mapping.grid.physicalCrossbars());
            report.energy.xbar_pj +=
                xb_activations * energy_model.xbarActivationPj();
            report.energy.adc_dac_pj +=
                xb_activations * energy_model.conversionPj();

            // Operand movement across the chip: sliding-window reuse
            // means only the fresh patch column plus the outputs cross
            // the NoC per window (same accounting as the scheduler's
            // transfer model).
            double fresh_in_elems;
            if (node.kind == OpKind::kConv2d) {
                const auto &in_dims = graph.tensor(node.inputs[0]).dims;
                fresh_in_elems = static_cast<double>(
                    in_dims[1] * node.conv().kernel_h *
                    node.conv().stride);
            } else {
                fresh_in_elems = static_cast<double>(matrix->rows);
            }
            const double bits_per_window =
                (fresh_in_elems + static_cast<double>(matrix->cols)) *
                arch.activation_bits;
            report.energy.movement_pj +=
                energy_model.movementPj(windows * bits_per_window);

            // Weight programming: all replicas' cells, once per
            // inference for reload-bearing segments, amortized to zero
            // for the resident first segment (counted when reload
            // cycles are present). Dual-mode resident segments are
            // programmed once at init and never rewritten.
            if (schedule.segments.size() > 1 && mapping.segment > 0 &&
                !mapping.resident) {
                const double cells =
                    static_cast<double>(matrix->rows) *
                    static_cast<double>(matrix->cols) *
                    static_cast<double>(arch.cellsPerWeight()) *
                    static_cast<double>(mapping.totalDuplication());
                report.energy.write_pj += energy_model.writePj(cells);
            }
            report.crossbars_mapped += mapping.totalCrossbars();
        } else {
            const std::int64_t ops = aluOpCount(graph, mapping.node);
            if (mapping.on_host) {
                // Hybrid offload: the host CPU prices its own compute;
                // the boundary transfer still crosses the chip link.
                report.energy.alu_pj +=
                    schedule.host_model.energy_pj_per_op *
                    static_cast<double>(ops);
            } else {
                report.energy.alu_pj +=
                    energy_model.aluPj(static_cast<double>(ops));
            }
            const std::int64_t bits =
                outputElements(graph, mapping.node) *
                arch.activation_bits;
            report.energy.movement_pj +=
                energy_model.movementPj(static_cast<double>(bits));
        }
    }

    report.peak_power_mw =
        static_cast<double>(report.peak_active_xbs) *
            energy_model.activeCrossbarPowerMw() +
        energy_model.movementPeakPowerMw();
    if (report.latency_cycles > 0.0)
        report.avg_power_mw = report.energy.total() /
                              report.latency_cycles;
    const std::int64_t total_xbs = arch.totalCrossbars();
    if (total_xbs > 0) {
        report.crossbar_utilization =
            static_cast<double>(std::min<std::int64_t>(
                report.crossbars_mapped, total_xbs)) /
            static_cast<double>(total_xbs);
    }
    return report;
}

} // namespace cimmlc
