#include "cache/artifact_cache.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace cimmlc {

// ----- ArtifactHash ---------------------------------------------------------

void
ArtifactHash::mixBytes(const char *data, std::size_t size)
{
    for (std::size_t i = 0; i < size; ++i) {
        const auto byte = static_cast<std::uint8_t>(data[i]);
        lo_ = (lo_ ^ byte) * 0x100000001b3ull;
        hi_ = (hi_ ^ byte) * 0x00000100000001b3ull ^ (hi_ >> 29);
    }
}

ArtifactHash &
ArtifactHash::mix(const std::string &text)
{
    mix(static_cast<std::int64_t>(text.size()));
    mixBytes(text.data(), text.size());
    return *this;
}

ArtifactHash &
ArtifactHash::mix(const char *text)
{
    const std::size_t size = std::strlen(text);
    mix(static_cast<std::int64_t>(size));
    mixBytes(text, size);
    return *this;
}

ArtifactHash &
ArtifactHash::mix(std::int64_t value)
{
    char bytes[sizeof value];
    std::memcpy(bytes, &value, sizeof value);
    mixBytes(bytes, sizeof value);
    return *this;
}

ArtifactHash &
ArtifactHash::mix(bool value)
{
    const char byte = value ? 1 : 0;
    mixBytes(&byte, 1);
    return *this;
}

ArtifactHash &
ArtifactHash::mix(double value)
{
    char text[64];
    std::snprintf(text, sizeof text, "%.17g", value);
    mixBytes(text, std::strlen(text));
    return *this;
}

std::string
ArtifactHash::digest() const
{
    char text[33];
    std::snprintf(text, sizeof text, "%016llx%016llx",
                  static_cast<unsigned long long>(hi_),
                  static_cast<unsigned long long>(lo_));
    return text;
}

// ----- ArtifactCache --------------------------------------------------------

namespace {

std::string
slotKey(const std::string &stage, const std::string &key)
{
    std::string combined;
    combined.reserve(stage.size() + key.size() + 1);
    combined += stage;
    combined += '\0';
    combined += key;
    return combined;
}

} // namespace

ArtifactCache::ArtifactCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    // A zero-entry LRU cannot satisfy its own insert contract, so 0 is
    // clamped — but say so: a caller asking for "no cache" would
    // otherwise silently get a one-entry cache.
    if (capacity == 0)
        warn("artifact cache capacity 0 clamped to 1 (the cache cannot "
             "be disabled; its smallest size is one entry)");
}

std::optional<ArtifactCache::Entry>
ArtifactCache::lookup(const std::string &stage, const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(slotKey(stage, key));
    if (it == slots_.end()) {
        ++misses_;
        ++stage_counters_[stage].misses;
        return std::nullopt;
    }
    ++hits_;
    ++stage_counters_[stage].hits;
    recency_.splice(recency_.begin(), recency_, it->second.recency);
    return it->second.entry;
}

void
ArtifactCache::insert(const std::string &stage, const std::string &key,
                      Entry entry)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string combined = slotKey(stage, key);
    auto it = slots_.find(combined);
    if (it != slots_.end()) {
        it->second.entry = std::move(entry);
        recency_.splice(recency_.begin(), recency_, it->second.recency);
        return;
    }
    while (slots_.size() >= capacity_) {
        const std::string &oldest = recency_.back();
        slots_.erase(oldest);
        recency_.pop_back();
        ++evictions_;
    }
    recency_.push_front(combined);
    slots_.emplace(combined, Slot{std::move(entry), recency_.begin()});
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    recency_.clear();
}

std::size_t
ArtifactCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

std::size_t
ArtifactCache::capacity() const
{
    return capacity_;
}

std::int64_t
ArtifactCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::int64_t
ArtifactCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::int64_t
ArtifactCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

ConfigValue
ArtifactCache::toConfig() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ConfigValue::Object doc;
    doc["capacity"] = ConfigValue::makeNumber(
        static_cast<double>(capacity_));
    doc["entries"] =
        ConfigValue::makeNumber(static_cast<double>(slots_.size()));
    doc["evictions"] =
        ConfigValue::makeNumber(static_cast<double>(evictions_));
    doc["hits"] = ConfigValue::makeNumber(static_cast<double>(hits_));
    doc["misses"] = ConfigValue::makeNumber(static_cast<double>(misses_));
    const std::int64_t total = hits_ + misses_;
    doc["hit_rate"] = ConfigValue::makeNumber(
        total > 0 ? static_cast<double>(hits_) / static_cast<double>(total)
                  : 0.0);

    ConfigValue::Object stages;
    for (const auto &[stage, counters] : stage_counters_) {
        ConfigValue::Object row;
        row["hits"] =
            ConfigValue::makeNumber(static_cast<double>(counters.hits));
        row["misses"] =
            ConfigValue::makeNumber(static_cast<double>(counters.misses));
        const std::int64_t seen = counters.hits + counters.misses;
        row["hit_rate"] = ConfigValue::makeNumber(
            seen > 0 ? static_cast<double>(counters.hits)
                           / static_cast<double>(seen)
                     : 0.0);
        stages[stage] = ConfigValue::makeObject(std::move(row));
    }
    doc["stages"] = ConfigValue::makeObject(std::move(stages));
    return ConfigValue::makeObject(std::move(doc));
}

} // namespace cimmlc
