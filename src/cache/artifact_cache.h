/**
 * @file
 * Fingerprint-keyed stage-level artifact cache: the TuneCache idea
 * generalized to every CompilerSession stage.
 *
 * Each pipeline stage derives a key from the hashes of its own inputs
 * (graph + Abs-arch fingerprint, the schedule options actually in
 * effect, codegen parameters, upstream-stage digests), so a changed
 * workload replays the unchanged stage prefix from cache and re-runs
 * only the invalidated suffix. Values are the stage artifacts
 * themselves (Schedule, CodegenResult, ...), stored type-erased behind
 * shared_ptr<const void>; replays copy the artifact out, so cached and
 * uncached runs stay byte-identical in every report field except
 * wall_ms and the "cached" provenance tag.
 *
 * The cache is bounded: a capacity cap with LRU eviction keeps a
 * process-wide warm cache (the compile daemon shares one across all
 * requests) from growing without bound, and evictions are counted for
 * `cimmlc.stats.v1`. All operations are thread-safe.
 */
#ifndef CIMMLC_CACHE_ARTIFACT_CACHE_H
#define CIMMLC_CACHE_ARTIFACT_CACHE_H

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/config.h"

namespace cimmlc {

/**
 * Order-insensitive-free incremental hasher for cache-key derivation:
 * two independent 64-bit FNV-1a streams (different offset bases) over
 * the same byte sequence, rendered as 32 hex digits. Every mix() call
 * is length-prefixed, so ("ab","c") and ("a","bc") never collide.
 */
class ArtifactHash
{
  public:
    ArtifactHash &mix(const std::string &text);
    ArtifactHash &mix(const char *text);
    ArtifactHash &mix(std::int64_t value);
    ArtifactHash &mix(bool value);
    /** Doubles mix via their %.17g text render, matching the kvjson
     * number round-trip, so keys agree across processes. */
    ArtifactHash &mix(double value);

    /** 32-hex-digit digest of everything mixed so far. */
    std::string digest() const;

  private:
    void mixBytes(const char *data, std::size_t size);

    std::uint64_t lo_ = 0xcbf29ce484222325ull;
    std::uint64_t hi_ = 0x6c62272e07bb0142ull;
};

/**
 * Thread-safe bounded LRU memo of stage artifacts, keyed by
 * (stage, input-hash). Only successful stage results are stored; a
 * lookup refreshes recency. Hit/miss counts are tracked per stage for
 * the daemon's stats surface.
 */
class ArtifactCache
{
  public:
    static constexpr std::size_t kDefaultCapacity = 512;

    struct Entry {
        //! the stage artifact (e.g. shared_ptr<const Schedule>);
        //! stages with no artifact (validate) store nullptr
        std::shared_ptr<const void> value;
        std::string detail;     //!< the stage trace detail line
        double compute_ms = 0.0; //!< wall time of the original compute
    };

    explicit ArtifactCache(std::size_t capacity = kDefaultCapacity);

    /** Returns the entry for (stage, key) and refreshes its recency;
     * counts a hit or miss against @p stage either way. */
    std::optional<Entry> lookup(const std::string &stage,
                                const std::string &key);

    /** Stores @p entry under (stage, key), evicting the least recently
     * used entry when the cache is at capacity. Re-inserting an
     * existing key refreshes its value and recency. */
    void insert(const std::string &stage, const std::string &key,
                Entry entry);

    void clear();

    std::size_t size() const;
    std::size_t capacity() const;
    std::int64_t evictions() const;
    std::int64_t hits() const;
    std::int64_t misses() const;

    /** Per-stage and aggregate hit/miss/eviction stats as a kvjson
     * object (embedded in `cimmlc.stats.v1` as "artifact_cache"). */
    ConfigValue toConfig() const;

  private:
    struct Slot {
        Entry entry;
        std::list<std::string>::iterator recency;
    };
    struct StageCounters {
        std::int64_t hits = 0;
        std::int64_t misses = 0;
    };

    mutable std::mutex mutex_;
    std::size_t capacity_;
    //! most recently used key at the front
    std::list<std::string> recency_;
    std::map<std::string, Slot> slots_;
    std::map<std::string, StageCounters> stage_counters_;
    std::int64_t evictions_ = 0;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

} // namespace cimmlc

#endif // CIMMLC_CACHE_ARTIFACT_CACHE_H
