#include "common/config.h"

#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strutil.h"

namespace cimmlc {

ConfigValue
ConfigValue::makeBool(bool v)
{
    ConfigValue out;
    out.type_ = ConfigType::kBool;
    out.bool_value_ = v;
    return out;
}

ConfigValue
ConfigValue::makeNumber(double v)
{
    ConfigValue out;
    out.type_ = ConfigType::kNumber;
    out.number_value_ = v;
    return out;
}

ConfigValue
ConfigValue::makeString(std::string v)
{
    ConfigValue out;
    out.type_ = ConfigType::kString;
    out.string_value_ = std::move(v);
    return out;
}

ConfigValue
ConfigValue::makeArray(Array v)
{
    ConfigValue out;
    out.type_ = ConfigType::kArray;
    out.array_value_ = std::move(v);
    return out;
}

ConfigValue
ConfigValue::makeObject(Object v)
{
    ConfigValue out;
    out.type_ = ConfigType::kObject;
    out.object_value_ = std::move(v);
    return out;
}

bool
ConfigValue::asBool() const
{
    CIMMLC_CHECK(isBool()) << "config value is not a bool";
    return bool_value_;
}

double
ConfigValue::asNumber() const
{
    CIMMLC_CHECK(isNumber()) << "config value is not a number";
    return number_value_;
}

std::int64_t
ConfigValue::asInt() const
{
    return static_cast<std::int64_t>(asNumber());
}

const std::string &
ConfigValue::asString() const
{
    CIMMLC_CHECK(isString()) << "config value is not a string";
    return string_value_;
}

const ConfigValue::Array &
ConfigValue::asArray() const
{
    CIMMLC_CHECK(isArray()) << "config value is not an array";
    return array_value_;
}

const ConfigValue::Object &
ConfigValue::asObject() const
{
    CIMMLC_CHECK(isObject()) << "config value is not an object";
    return object_value_;
}

bool
ConfigValue::has(const std::string &key) const
{
    return isObject() && object_value_.count(key) > 0;
}

StatusOr<ConfigValue>
ConfigValue::get(const std::string &key) const
{
    if (!isObject())
        return failedPrecondition("config value is not an object");
    auto it = object_value_.find(key);
    if (it == object_value_.end())
        return notFound("config key '" + key + "' not found");
    return it->second;
}

double
ConfigValue::getNumberOr(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    const ConfigValue &v = object_value_.at(key);
    return v.isNumber() ? v.asNumber() : fallback;
}

std::int64_t
ConfigValue::getIntOr(const std::string &key, std::int64_t fallback) const
{
    if (!has(key))
        return fallback;
    const ConfigValue &v = object_value_.at(key);
    return v.isNumber() ? v.asInt() : fallback;
}

std::string
ConfigValue::getStringOr(const std::string &key, std::string fallback) const
{
    if (!has(key))
        return fallback;
    const ConfigValue &v = object_value_.at(key);
    return v.isString() ? v.asString() : fallback;
}

bool
ConfigValue::getBoolOr(const std::string &key, bool fallback) const
{
    if (!has(key))
        return fallback;
    const ConfigValue &v = object_value_.at(key);
    return v.isBool() ? v.asBool() : fallback;
}

namespace {

void
appendEscaped(std::string *out, const std::string &text)
{
    out->push_back('"');
    for (char c : text) {
        switch (c) {
          case '"': out->append("\\\""); break;
          case '\\': out->append("\\\\"); break;
          case '\n': out->append("\\n"); break;
          case '\t': out->append("\\t"); break;
          case '\r': out->append("\\r"); break;
          default: out->push_back(c);
        }
    }
    out->push_back('"');
}

std::string
numberToString(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::abs(v) < 9.0e15) {
        return std::to_string(static_cast<long long>(v));
    }
    return strformat("%.17g", v);
}

} // namespace

std::string
ConfigValue::dump(bool pretty, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    std::string out;
    switch (type_) {
      case ConfigType::kNull:
        return "null";
      case ConfigType::kBool:
        return bool_value_ ? "true" : "false";
      case ConfigType::kNumber:
        return numberToString(number_value_);
      case ConfigType::kString:
        appendEscaped(&out, string_value_);
        return out;
      case ConfigType::kArray: {
        if (array_value_.empty())
            return "[]";
        out.push_back('[');
        for (std::size_t i = 0; i < array_value_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            if (pretty) {
                out.push_back('\n');
                out.append(pad_in);
            }
            out.append(array_value_[i].dump(pretty, indent + 1));
        }
        if (pretty) {
            out.push_back('\n');
            out.append(pad);
        }
        out.push_back(']');
        return out;
      }
      case ConfigType::kObject: {
        if (object_value_.empty())
            return "{}";
        out.push_back('{');
        bool first = true;
        for (const auto &[key, value] : object_value_) {
            if (!first)
                out.push_back(',');
            first = false;
            if (pretty) {
                out.push_back('\n');
                out.append(pad_in);
            }
            appendEscaped(&out, key);
            out.append(pretty ? ": " : ":");
            out.append(value.dump(pretty, indent + 1));
        }
        if (pretty) {
            out.push_back('\n');
            out.append(pad);
        }
        out.push_back('}');
        return out;
      }
    }
    return out;
}

namespace {

/** Recursive-descent parser over the kvjson grammar. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    StatusOr<ConfigValue>
    parse()
    {
        skipFluff();
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue value, parseValue());
        skipFluff();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return value;
    }

  private:
    Status
    fail(const std::string &what) const
    {
        return parseError(strformat("%s at offset %zu (line %d)",
                                    what.c_str(), pos_, line_));
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    advance()
    {
        if (text_[pos_] == '\n')
            ++line_;
        ++pos_;
    }

    void
    skipFluff()
    {
        while (!atEnd()) {
            char c = peek();
            if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '#') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    bool
    consumeLiteral(std::string_view literal)
    {
        if (text_.compare(pos_, literal.size(), literal) != 0)
            return false;
        for (std::size_t i = 0; i < literal.size(); ++i)
            advance();
        return true;
    }

    StatusOr<ConfigValue>
    parseValue()
    {
        if (atEnd())
            return fail("unexpected end of input");
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (consumeLiteral("true"))
            return ConfigValue::makeBool(true);
        if (consumeLiteral("false"))
            return ConfigValue::makeBool(false);
        if (consumeLiteral("null"))
            return ConfigValue::makeNull();
        return parseNumber();
    }

    StatusOr<ConfigValue>
    parseString()
    {
        advance(); // opening quote
        std::string out;
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = peek();
            advance();
            if (c == '"')
                break;
            if (c == '\\') {
                if (atEnd())
                    return fail("unterminated escape");
                char e = peek();
                advance();
                switch (e) {
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case 'r': out.push_back('\r'); break;
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  default:
                    return fail("unsupported escape sequence");
                }
            } else {
                out.push_back(c);
            }
        }
        return ConfigValue::makeString(std::move(out));
    }

    StatusOr<ConfigValue>
    parseNumber()
    {
        std::size_t start = pos_;
        while (!atEnd() &&
               (std::isdigit(static_cast<unsigned char>(peek())) ||
                peek() == '-' || peek() == '+' || peek() == '.' ||
                peek() == 'e' || peek() == 'E')) {
            advance();
        }
        double value = 0.0;
        if (pos_ == start ||
            !parseDouble(text_.substr(start, pos_ - start), &value)) {
            return fail("malformed number");
        }
        return ConfigValue::makeNumber(value);
    }

    StatusOr<ConfigValue>
    parseArray()
    {
        advance(); // '['
        ConfigValue::Array items;
        skipFluff();
        if (!atEnd() && peek() == ']') {
            advance();
            return ConfigValue::makeArray(std::move(items));
        }
        while (true) {
            skipFluff();
            CIMMLC_ASSIGN_OR_RETURN(ConfigValue item, parseValue());
            items.push_back(std::move(item));
            skipFluff();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == ']') {
                advance();
                return ConfigValue::makeArray(std::move(items));
            }
            return fail("expected ',' or ']' in array");
        }
    }

    StatusOr<ConfigValue>
    parseObject()
    {
        advance(); // '{'
        ConfigValue::Object members;
        skipFluff();
        if (!atEnd() && peek() == '}') {
            advance();
            return ConfigValue::makeObject(std::move(members));
        }
        while (true) {
            skipFluff();
            if (atEnd() || peek() != '"')
                return fail("expected string key in object");
            CIMMLC_ASSIGN_OR_RETURN(ConfigValue key, parseString());
            skipFluff();
            if (atEnd() || peek() != ':')
                return fail("expected ':' after object key");
            advance();
            skipFluff();
            CIMMLC_ASSIGN_OR_RETURN(ConfigValue value, parseValue());
            members[key.asString()] = std::move(value);
            skipFluff();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == '}') {
                advance();
                return ConfigValue::makeObject(std::move(members));
            }
            return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

} // namespace

StatusOr<ConfigValue>
parseConfig(const std::string &text)
{
    Parser parser(text);
    return parser.parse();
}

StatusOr<ConfigValue>
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return notFound("cannot open config file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto result = parseConfig(buffer.str());
    if (!result.isOk())
        return result.status().withContext(path);
    return result;
}

Status
saveConfigFile(const std::string &path, const ConfigValue &value)
{
    std::ofstream out(path);
    if (!out)
        return invalidArgument("cannot open '" + path + "' for writing");
    out << value.dump(/*pretty=*/true) << "\n";
    if (!out)
        return internalError("write to '" + path + "' failed");
    return Status::ok();
}

Status
saveConfigFileAtomic(const std::string &path, const ConfigValue &value)
{
    // Same-directory temp file: rename(2) is only atomic within one
    // filesystem. The pid suffix keeps two processes snapshotting the
    // same path from clobbering each other's temp files.
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(temp);
        if (!out)
            return invalidArgument("cannot open '" + temp
                                   + "' for writing");
        out << value.dump(/*pretty=*/true) << "\n";
        out.flush();
        if (!out) {
            std::remove(temp.c_str());
            return internalError("write to '" + temp + "' failed");
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return internalError("rename '" + temp + "' -> '" + path
                             + "' failed");
    }
    return Status::ok();
}

} // namespace cimmlc
