#include "common/strutil.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cimmlc {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string
formatDouble(double value, int digits)
{
    std::string out = strformat("%.*f", digits, value);
    // Trim trailing zeros but keep at least one decimal for readability.
    if (out.find('.') != std::string::npos) {
        std::size_t last = out.find_last_not_of('0');
        if (out[last] == '.')
            ++last;
        out.erase(last + 1);
    }
    return out;
}

std::string
humanCount(double value)
{
    const char *suffix = "";
    double scaled = value;
    if (value >= 1e9) {
        scaled = value / 1e9;
        suffix = "G";
    } else if (value >= 1e6) {
        scaled = value / 1e6;
        suffix = "M";
    } else if (value >= 1e3) {
        scaled = value / 1e3;
        suffix = "K";
    }
    return strformat("%.2f%s", scaled, suffix);
}

bool
parseInt64(std::string_view text, std::int64_t *out)
{
    std::string owned(trim(text));
    if (owned.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long value = std::strtoll(owned.c_str(), &end, 10);
    if (errno != 0 || end != owned.c_str() + owned.size())
        return false;
    *out = static_cast<std::int64_t>(value);
    return true;
}

bool
parseDouble(std::string_view text, double *out)
{
    std::string owned(trim(text));
    if (owned.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(owned.c_str(), &end);
    if (errno != 0 || end != owned.c_str() + owned.size())
        return false;
    *out = value;
    return true;
}

} // namespace cimmlc
