/**
 * @file
 * Deterministic pseudo-random number generation for tests and workload
 * synthesis. Uses SplitMix64 so the entire repository is reproducible
 * independent of the platform's std::mt19937 implementation details.
 */
#ifndef CIMMLC_COMMON_RNG_H
#define CIMMLC_COMMON_RNG_H

#include <cstdint>

namespace cimmlc {

/** SplitMix64 generator; tiny state, excellent statistical quality. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi - lo) + 1ull;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Int8-range value, handy for quantized tensor fills. */
    std::int8_t
    int8()
    {
        return static_cast<std::int8_t>(uniformInt(-128, 127));
    }

  private:
    std::uint64_t state_;
};

} // namespace cimmlc

#endif // CIMMLC_COMMON_RNG_H
