#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/status.h"

namespace cimmlc {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kInfo};
std::atomic<long> g_warning_count{0};
std::mutex g_log_mutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

} // namespace

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
      case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
      case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
      case StatusCode::kInternal: return "INTERNAL";
      case StatusCode::kParseError: return "PARSE_ERROR";
    }
    return "UNKNOWN";
}

namespace detail {

void
statusOrAbort(const std::string &message)
{
    panic("StatusOr::value() called on error status: " + message);
}

LogMessageBuilder::LogMessageBuilder(LogLevel level, const char *file,
                                     int line)
    : level_(level)
{
    // File and line only matter for debug-level triage.
    if (level == LogLevel::kDebug)
        stream_ << file << ":" << line << " ";
}

LogMessageBuilder::~LogMessageBuilder()
{
    Logger::log(level_, stream_.str());
}

void
checkFailed(const char *file, int line, const char *expr,
            const std::string &extra)
{
    std::string message = std::string("CHECK failed at ") + file + ":" +
                          std::to_string(line) + ": " + expr;
    if (!extra.empty())
        message += " — " + extra;
    panic(message);
}

} // namespace detail

LogLevel
Logger::threshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
Logger::setThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

void
Logger::log(LogLevel level, const std::string &message)
{
    if (level >= LogLevel::kWarn)
        g_warning_count.fetch_add(1, std::memory_order_relaxed);
    if (level < threshold())
        return;
    std::lock_guard<std::mutex> guard(g_log_mutex);
    std::fprintf(stderr, "[cim-mlc %s] %s\n", levelName(level),
                 message.c_str());
}

long
Logger::warningCount()
{
    return g_warning_count.load(std::memory_order_relaxed);
}

void
inform(const std::string &message)
{
    Logger::log(LogLevel::kInfo, message);
}

void
warn(const std::string &message)
{
    Logger::log(LogLevel::kWarn, message);
}

void
fatal(const std::string &message)
{
    std::lock_guard<std::mutex> guard(g_log_mutex);
    std::fprintf(stderr, "[cim-mlc FATAL] %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    {
        std::lock_guard<std::mutex> guard(g_log_mutex);
        std::fprintf(stderr, "[cim-mlc PANIC] %s\n", message.c_str());
    }
    std::abort();
}

} // namespace cimmlc
