/**
 * @file
 * kvjson: a small, self-contained JSON-subset document model.
 *
 * Architecture descriptions (Abs-arch) are serialized in this format so
 * users can describe new CIM chips without recompiling, mirroring the
 * Figure 17-19 abstractions in the paper. Supports objects, arrays,
 * strings, numbers, booleans, and null; comments beginning with '#' or
 * "//" run to end-of-line (an extension for hand-written configs).
 */
#ifndef CIMMLC_COMMON_CONFIG_H
#define CIMMLC_COMMON_CONFIG_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace cimmlc {

/** Discriminator for ConfigValue payloads. */
enum class ConfigType { kNull, kBool, kNumber, kString, kArray, kObject };

/**
 * A node in a parsed configuration document.
 *
 * Values are immutable after parsing; builders construct documents
 * programmatically for serialization round-trips.
 */
class ConfigValue
{
  public:
    using Array = std::vector<ConfigValue>;
    using Object = std::map<std::string, ConfigValue>;

    ConfigValue() : type_(ConfigType::kNull) {}
    static ConfigValue makeNull() { return ConfigValue(); }
    static ConfigValue makeBool(bool v);
    static ConfigValue makeNumber(double v);
    static ConfigValue makeString(std::string v);
    static ConfigValue makeArray(Array v);
    static ConfigValue makeObject(Object v);

    ConfigType type() const { return type_; }
    bool isNull() const { return type_ == ConfigType::kNull; }
    bool isBool() const { return type_ == ConfigType::kBool; }
    bool isNumber() const { return type_ == ConfigType::kNumber; }
    bool isString() const { return type_ == ConfigType::kString; }
    bool isArray() const { return type_ == ConfigType::kArray; }
    bool isObject() const { return type_ == ConfigType::kObject; }

    /** @pre isBool() */
    bool asBool() const;
    /** @pre isNumber() */
    double asNumber() const;
    /** @pre isNumber(); truncates toward zero */
    std::int64_t asInt() const;
    /** @pre isString() */
    const std::string &asString() const;
    /** @pre isArray() */
    const Array &asArray() const;
    /** @pre isObject() */
    const Object &asObject() const;

    /** True when this object has member @p key. */
    bool has(const std::string &key) const;

    /** Member lookup; error status when absent or not an object. */
    StatusOr<ConfigValue> get(const std::string &key) const;

    /** Typed member lookups with defaults for optional fields. */
    double getNumberOr(const std::string &key, double fallback) const;
    std::int64_t getIntOr(const std::string &key,
                          std::int64_t fallback) const;
    std::string getStringOr(const std::string &key,
                            std::string fallback) const;
    bool getBoolOr(const std::string &key, bool fallback) const;

    /** Serializes to compact or pretty JSON text. */
    std::string dump(bool pretty = false, int indent = 0) const;

  private:
    ConfigType type_;
    bool bool_value_ = false;
    double number_value_ = 0.0;
    std::string string_value_;
    Array array_value_;
    Object object_value_;
};

/** Parses a kvjson document from text. */
StatusOr<ConfigValue> parseConfig(const std::string &text);

/** Reads and parses a kvjson file from disk. */
StatusOr<ConfigValue> loadConfigFile(const std::string &path);

/** Writes @p value as pretty JSON to @p path. */
Status saveConfigFile(const std::string &path, const ConfigValue &value);

/**
 * Atomically replaces @p path with @p value: the document is written
 * to a same-directory temp file and rename(2)d over the target, so a
 * concurrent reader sees either the old or the new document, never a
 * torn one. The daemon's periodic TuneCache snapshots rely on this.
 */
Status saveConfigFileAtomic(const std::string &path,
                            const ConfigValue &value);

} // namespace cimmlc

#endif // CIMMLC_COMMON_CONFIG_H
