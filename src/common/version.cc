#include "common/version.h"

namespace cimmlc {

const char *
cimmlcVersion()
{
    // Bumped when the report/rpc wire surface changes shape; the daemon
    // handshake compares this string verbatim.
    return "0.8.0";
}

} // namespace cimmlc
