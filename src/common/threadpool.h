/**
 * @file
 * Work-stealing thread pool used by the batch compilation driver.
 *
 * Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
 * and steals FIFO from a victim when its deque runs dry, so an uneven
 * sweep (ResNet101 next to a toy net) still keeps every core busy.
 * Submission round-robins across worker deques to seed the pool.
 *
 * The pool is deliberately free of global state: multiple pools can
 * coexist (tests construct several), and tasks may submit further tasks.
 */
#ifndef CIMMLC_COMMON_THREADPOOL_H
#define CIMMLC_COMMON_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cimmlc {

/** Fixed-size work-stealing pool; tasks are void() callables. */
class ThreadPool
{
  public:
    /**
     * Spawns @p threads workers; 0 means one per hardware thread
     * (at least 1).
     */
    explicit ThreadPool(int threads = 0)
    {
        int n = threads > 0
                    ? threads
                    : static_cast<int>(std::thread::hardware_concurrency());
        if (n < 1)
            n = 1;
        queues_.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            queues_.push_back(std::make_unique<WorkerQueue>());
        workers_.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            workers_.emplace_back(
                [this, i] { workerLoop(static_cast<std::size_t>(i)); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool()
    {
        wait();
        {
            std::lock_guard<std::mutex> lock(work_mutex_);
            stop_ = true;
        }
        work_cv_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
    }

    /** Number of worker threads. */
    int
    threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Enqueues @p task; never blocks on task execution. */
    void
    submit(std::function<void()> task)
    {
        pending_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t slot =
            next_queue_.fetch_add(1, std::memory_order_relaxed)
            % queues_.size();
        {
            std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
            queues_[slot]->tasks.push_back(std::move(task));
        }
        // Empty critical section: serializes with workers evaluating the
        // sleep predicate so the notify below cannot be lost.
        { std::lock_guard<std::mutex> lock(work_mutex_); }
        work_cv_.notify_one();
    }

    /** Blocks until every submitted task (so far) has finished. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(done_mutex_);
        done_cv_.wait(lock, [this] {
            return pending_.load(std::memory_order_acquire) == 0;
        });
    }

  private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    bool
    tryPop(std::size_t self, std::function<void()> &out)
    {
        {
            WorkerQueue &own = *queues_[self];
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                out = std::move(own.tasks.back());
                own.tasks.pop_back();
                return true;
            }
        }
        for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
            WorkerQueue &victim =
                *queues_[(self + offset) % queues_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                out = std::move(victim.tasks.front());
                victim.tasks.pop_front();
                return true;
            }
        }
        return false;
    }

    bool
    anyQueued()
    {
        for (const auto &queue : queues_) {
            std::lock_guard<std::mutex> lock(queue->mutex);
            if (!queue->tasks.empty())
                return true;
        }
        return false;
    }

    void
    workerLoop(std::size_t self)
    {
        std::function<void()> task;
        for (;;) {
            if (tryPop(self, task)) {
                task();
                task = nullptr;
                if (pending_.fetch_sub(1, std::memory_order_acq_rel)
                    == 1) {
                    std::lock_guard<std::mutex> lock(done_mutex_);
                    done_cv_.notify_all();
                }
                continue;
            }
            std::unique_lock<std::mutex> lock(work_mutex_);
            work_cv_.wait(lock, [this] { return stop_ || anyQueued(); });
            if (stop_ && !anyQueued())
                return;
        }
    }

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<std::int64_t> pending_{0};

    std::mutex work_mutex_;
    std::condition_variable work_cv_;
    bool stop_ = false;

    std::mutex done_mutex_;
    std::condition_variable done_cv_;
};

} // namespace cimmlc

#endif // CIMMLC_COMMON_THREADPOOL_H
