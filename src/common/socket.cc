#include "common/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strutil.h"

namespace cimmlc {

namespace {

Status
errnoStatus(const char *what)
{
    return internalError(strformat("%s: %s", what, std::strerror(errno)));
}

} // namespace

// ----- Socket ---------------------------------------------------------------

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Status
Socket::sendAll(const void *data, std::size_t size)
{
    const char *cursor = static_cast<const char *>(data);
    std::size_t left = size;
    while (left > 0) {
        // MSG_NOSIGNAL: a peer that disconnected mid-stream must
        // surface as an error status, not kill the daemon with SIGPIPE.
        const ssize_t sent = ::send(fd_, cursor, left, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("send");
        }
        cursor += sent;
        left -= static_cast<std::size_t>(sent);
    }
    return Status::ok();
}

Status
Socket::recvAll(void *data, std::size_t size)
{
    char *cursor = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < size) {
        const ssize_t n = ::recv(fd_, cursor + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("recv");
        }
        if (n == 0) {
            if (got == 0)
                return notFound("connection closed");
            return internalError(strformat(
                "connection closed mid-frame (%zu of %zu bytes)", got,
                size));
        }
        got += static_cast<std::size_t>(n);
    }
    return Status::ok();
}

// ----- connect helpers ------------------------------------------------------

StatusOr<Socket>
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return invalidArgument("unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_UNIX)");
    Socket socket(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0)
        return errnoStatus(("connect to '" + path + "'").c_str());
    return socket;
}

StatusOr<Socket>
connectTcp(const std::string &host, int port)
{
    if (port <= 0 || port > 65535)
        return invalidArgument(
            strformat("bad TCP port %d (expected 1..65535)", port));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return invalidArgument("bad IPv4 host '" + host + "'");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_INET)");
    Socket socket(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0)
        return errnoStatus(
            strformat("connect to %s:%d", host.c_str(), port).c_str());
    return socket;
}

// ----- Listener -------------------------------------------------------------

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), port_(other.port_),
      unix_path_(std::move(other.unix_path_))
{
    other.fd_ = -1;
    other.unix_path_.clear();
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        unix_path_ = std::move(other.unix_path_);
        other.fd_ = -1;
        other.unix_path_.clear();
    }
    return *this;
}

StatusOr<Listener>
Listener::listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return invalidArgument("unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_UNIX)");
    Listener listener;
    listener.fd_ = fd;
    listener.unix_path_ = path;
    // A previous daemon that died without cleanup leaves the socket
    // file behind; binding over it is the expected restart behavior.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0)
        return errnoStatus(("bind '" + path + "'").c_str());
    if (::listen(fd, 64) != 0)
        return errnoStatus("listen");
    return listener;
}

StatusOr<Listener>
Listener::listenTcp(int port)
{
    if (port < 0 || port > 65535)
        return invalidArgument(
            strformat("bad TCP port %d (expected 0..65535)", port));
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_INET)");
    Listener listener;
    listener.fd_ = fd;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0)
        return errnoStatus(strformat("bind 127.0.0.1:%d", port).c_str());
    if (::listen(fd, 64) != 0)
        return errnoStatus("listen");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) != 0)
        return errnoStatus("getsockname");
    listener.port_ = static_cast<int>(ntohs(bound.sin_port));
    return listener;
}

StatusOr<Socket>
Listener::accept()
{
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        // EBADF/EINVAL after close() is the normal shutdown path.
        return notFound(strformat("accept: %s", std::strerror(errno)));
    }
}

void
Listener::close()
{
    if (fd_ >= 0) {
        // shutdown() unblocks a thread parked in accept(); close alone
        // does not on Linux.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
    if (!unix_path_.empty()) {
        ::unlink(unix_path_.c_str());
        unix_path_.clear();
    }
}

// ----- framing --------------------------------------------------------------

Status
sendFrame(Socket &socket, const ConfigValue &doc)
{
    const std::string payload = doc.dump(/*pretty=*/false);
    const std::string header =
        strformat("cimmlc-rpc %zu\n", payload.size());
    std::string frame;
    frame.reserve(header.size() + payload.size() + 1);
    frame += header;
    frame += payload;
    frame += '\n';
    return socket.sendAll(frame.data(), frame.size());
}

StatusOr<ConfigValue>
recvFrame(Socket &socket)
{
    // Read the header byte-by-byte up to the newline; headers are tiny
    // and this keeps the socket free of read-ahead buffering state.
    std::string header;
    for (;;) {
        char c = 0;
        const Status got = socket.recvAll(&c, 1);
        if (!got.isOk()) {
            if (got.code() == StatusCode::kNotFound && header.empty())
                return got; // clean close between frames
            return got.withContext("rpc frame header");
        }
        if (c == '\n')
            break;
        header.push_back(c);
        if (header.size() > 64)
            return parseError("rpc frame header too long: '"
                              + header.substr(0, 32) + "...'");
    }
    if (!startsWith(header, "cimmlc-rpc "))
        return parseError("bad rpc frame magic: '" + header + "'");
    std::int64_t length = 0;
    if (!parseInt64(trim(header.substr(11)), &length) || length < 0)
        return parseError("bad rpc frame length: '" + header + "'");
    if (length > kMaxFrameBytes)
        return outOfRange(strformat(
            "rpc frame of %lld bytes exceeds the %lld byte ceiling",
            static_cast<long long>(length),
            static_cast<long long>(kMaxFrameBytes)));
    std::string payload(static_cast<std::size_t>(length), '\0');
    if (length > 0) {
        CIMMLC_RETURN_IF_ERROR(
            socket.recvAll(payload.data(), payload.size())
                .withContext("rpc frame payload"));
    }
    char trailer = 0;
    CIMMLC_RETURN_IF_ERROR(socket.recvAll(&trailer, 1)
                               .withContext("rpc frame trailer"));
    if (trailer != '\n')
        return parseError("rpc frame missing trailing newline");
    auto doc = parseConfig(payload);
    if (!doc.isOk())
        return doc.status().withContext("rpc frame payload");
    return doc;
}

} // namespace cimmlc
