/**
 * @file
 * String formatting and tokenizing helpers shared across the stack.
 */
#ifndef CIMMLC_COMMON_STRUTIL_H
#define CIMMLC_COMMON_STRUTIL_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cimmlc {

/** Splits @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Removes leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True when @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-cases ASCII letters. */
std::string toLower(std::string_view text);

/** Joins @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Renders a double with @p digits significant decimals, trimming zeros. */
std::string formatDouble(double value, int digits = 3);

/** Renders counts like 12345678 as "12.35M" for table output. */
std::string humanCount(double value);

/** Parses a signed integer; returns false on malformed input. */
bool parseInt64(std::string_view text, std::int64_t *out);

/** Parses a double; returns false on malformed input. */
bool parseDouble(std::string_view text, double *out);

} // namespace cimmlc

#endif // CIMMLC_COMMON_STRUTIL_H
