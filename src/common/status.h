/**
 * @file
 * Status and StatusOr: lightweight error propagation for library code.
 *
 * Library modules report recoverable errors (bad configuration, infeasible
 * mapping, malformed program) through Status rather than exceptions, in the
 * spirit of the gem5 fatal()/panic() split: Status is for user-caused
 * conditions, CHECK/panic macros (logging.h) are for internal invariants.
 */
#ifndef CIMMLC_COMMON_STATUS_H
#define CIMMLC_COMMON_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace cimmlc {

/** Error categories carried by Status. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,    //!< caller passed a malformed value
    kFailedPrecondition, //!< object state does not permit the operation
    kNotFound,           //!< a named entity does not exist
    kOutOfRange,         //!< an index or resource bound was exceeded
    kUnimplemented,      //!< the feature is not supported on this path
    kResourceExhausted,  //!< the architecture cannot hold the workload
    kInternal,           //!< invariant violation that was caught gracefully
    kParseError,         //!< text input could not be parsed
};

/** Human-readable name of a StatusCode. */
const char *statusCodeName(StatusCode code);

/**
 * Result of an operation that can fail without a payload.
 *
 * A default-constructed Status is OK. Error statuses carry a code and a
 * message assembled at the failure site.
 */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() : code_(StatusCode::kOk) {}

    /** Constructs an error status; @p code must not be kOk. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Formats "code: message" for logs and test output. */
    std::string
    toString() const
    {
        if (isOk())
            return "OK";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

    /** Prepends @p context to the message, keeping the code. */
    Status
    withContext(const std::string &context) const
    {
        if (isOk())
            return *this;
        return Status(code_, context + ": " + message_);
    }

  private:
    StatusCode code_;
    std::string message_;
};

/** Convenience factories mirroring StatusCode values. */
inline Status
invalidArgument(std::string msg)
{
    return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status
failedPrecondition(std::string msg)
{
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status
notFound(std::string msg)
{
    return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status
outOfRange(std::string msg)
{
    return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status
unimplemented(std::string msg)
{
    return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status
resourceExhausted(std::string msg)
{
    return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status
internalError(std::string msg)
{
    return Status(StatusCode::kInternal, std::move(msg));
}
inline Status
parseError(std::string msg)
{
    return Status(StatusCode::kParseError, std::move(msg));
}

/**
 * Result of an operation that yields a value or an error.
 *
 * Access the payload with value() only after checking isOk(); value() on an
 * error aborts (it is an internal bug, not a user error).
 */
template <typename T>
class StatusOr
{
  public:
    /** Implicit construction from a success value. */
    StatusOr(T value) : status_(Status::ok()), value_(std::move(value)) {}

    /** Implicit construction from an error status. */
    StatusOr(Status status) : status_(std::move(status))
    {
        // Building a StatusOr from OK without a payload is a bug; demote to
        // an internal error so the caller still sees a failure.
        if (status_.isOk()) {
            status_ = internalError(
                "StatusOr constructed from OK status without a value");
        }
    }

    bool isOk() const { return status_.isOk(); }
    const Status &status() const { return status_; }

    /** @pre isOk() */
    const T &
    value() const &
    {
        abortIfError();
        return *value_;
    }

    /** @pre isOk() */
    T &
    value() &
    {
        abortIfError();
        return *value_;
    }

    /** @pre isOk() */
    T &&
    value() &&
    {
        abortIfError();
        return std::move(*value_);
    }

    /** Returns the payload or @p fallback when holding an error. */
    T
    valueOr(T fallback) const
    {
        return isOk() ? *value_ : std::move(fallback);
    }

  private:
    void abortIfError() const;

    Status status_;
    std::optional<T> value_;
};

namespace detail {
/** Out-of-line abort helper so status.h does not pull in logging. */
[[noreturn]] void statusOrAbort(const std::string &message);
} // namespace detail

template <typename T>
void
StatusOr<T>::abortIfError() const
{
    if (!isOk())
        detail::statusOrAbort(status_.toString());
}

/** Propagates an error Status from the current function. */
#define CIMMLC_RETURN_IF_ERROR(expr)                                        \
    do {                                                                    \
        ::cimmlc::Status _cimmlc_status = (expr);                           \
        if (!_cimmlc_status.isOk())                                         \
            return _cimmlc_status;                                          \
    } while (false)

/** Assigns the payload of a StatusOr or propagates its error. */
#define CIMMLC_ASSIGN_OR_RETURN(lhs, expr)                                  \
    CIMMLC_ASSIGN_OR_RETURN_IMPL_(                                          \
        CIMMLC_STATUS_CONCAT_(_cimmlc_statusor_, __LINE__), lhs, expr)

#define CIMMLC_STATUS_CONCAT_INNER_(a, b) a##b
#define CIMMLC_STATUS_CONCAT_(a, b) CIMMLC_STATUS_CONCAT_INNER_(a, b)
#define CIMMLC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)                       \
    auto tmp = (expr);                                                      \
    if (!tmp.isOk())                                                        \
        return tmp.status();                                                \
    lhs = std::move(tmp).value()

} // namespace cimmlc

#endif // CIMMLC_COMMON_STATUS_H
