/**
 * @file
 * Compiler version identity, shared by the CLI (`cimmlc --version`),
 * the `cimmlc.report.v1` document (`compiler_version` key), and the
 * `cimmlc.rpc.v1` daemon handshake so clients can detect daemon/CLI
 * skew before submitting work.
 */
#ifndef CIMMLC_COMMON_VERSION_H
#define CIMMLC_COMMON_VERSION_H

namespace cimmlc {

/** Semantic version of the compiler stack, e.g. "0.8.0". */
const char *cimmlcVersion();

} // namespace cimmlc

#endif // CIMMLC_COMMON_VERSION_H
