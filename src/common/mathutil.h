/**
 * @file
 * Small integer-math helpers used across mapping and scheduling code.
 */
#ifndef CIMMLC_COMMON_MATHUTIL_H
#define CIMMLC_COMMON_MATHUTIL_H

#include <cstdint>

#include "common/logging.h"

namespace cimmlc {

/** ceil(a / b) for positive integers. @pre b > 0 */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Rounds @p a up to the next multiple of @p b. @pre b > 0 */
constexpr std::int64_t
roundUp(std::int64_t a, std::int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** Saturating clamp into [lo, hi]. */
constexpr std::int64_t
clampInt(std::int64_t v, std::int64_t lo, std::int64_t hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** True when @p v is a power of two (and positive). */
constexpr bool
isPowerOfTwo(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Integer log2 rounding down. @pre v > 0 */
constexpr int
floorLog2(std::int64_t v)
{
    int out = -1;
    while (v > 0) {
        v >>= 1;
        ++out;
    }
    return out;
}

} // namespace cimmlc

#endif // CIMMLC_COMMON_MATHUTIL_H
