/**
 * @file
 * Logging and invariant-checking utilities.
 *
 * Follows the gem5 split between user-caused and simulator-caused failures:
 *  - CIMMLC_FATAL: the input/configuration is at fault; exit(1).
 *  - CIMMLC_PANIC / CIMMLC_CHECK: an internal invariant broke; abort().
 *  - inform/warn: status messages that never stop execution.
 */
#ifndef CIMMLC_COMMON_LOGGING_H
#define CIMMLC_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace cimmlc {

/** Severity levels for runtime log messages. */
enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/**
 * Process-wide logging configuration.
 *
 * Messages below the threshold are dropped. Tests lower the threshold to
 * kDebug; benches raise it to kWarn to keep tables clean.
 */
class Logger
{
  public:
    static LogLevel threshold();
    static void setThreshold(LogLevel level);

    /** Emits @p message at @p level if it passes the threshold. */
    static void log(LogLevel level, const std::string &message);

    /** Number of messages emitted at kWarn or above since start. */
    static long warningCount();
};

/** Logs an informational message (never fatal). */
void inform(const std::string &message);
/** Logs a warning about questionable but survivable conditions. */
void warn(const std::string &message);

/** Terminates with exit(1); for user-caused unrecoverable conditions. */
[[noreturn]] void fatal(const std::string &message);
/** Terminates with abort(); for internal bugs. */
[[noreturn]] void panic(const std::string &message);

namespace detail {

/** Stream builder used by the logging macros. */
class LogMessageBuilder
{
  public:
    LogMessageBuilder(LogLevel level, const char *file, int line);
    ~LogMessageBuilder();

    template <typename T>
    LogMessageBuilder &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

[[noreturn]] void checkFailed(const char *file, int line, const char *expr,
                              const std::string &extra);

/** Stream collector for CHECK failure annotations. */
class CheckMessageCollector
{
  public:
    CheckMessageCollector(const char *file, int line, const char *expr)
        : file_(file), line_(line), expr_(expr)
    {
    }

    ~CheckMessageCollector() { checkFailed(file_, line_, expr_, stream_.str()); }

    template <typename T>
    CheckMessageCollector &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    const char *file_;
    int line_;
    const char *expr_;
    std::ostringstream stream_;
};

} // namespace detail

#define CIMMLC_LOG(level)                                                   \
    ::cimmlc::detail::LogMessageBuilder(level, __FILE__, __LINE__)
#define CIMMLC_DEBUG() CIMMLC_LOG(::cimmlc::LogLevel::kDebug)
#define CIMMLC_INFO() CIMMLC_LOG(::cimmlc::LogLevel::kInfo)
#define CIMMLC_WARN() CIMMLC_LOG(::cimmlc::LogLevel::kWarn)

/** Aborts with a diagnostic when @p cond is false. Internal invariants. */
#define CIMMLC_CHECK(cond)                                                  \
    if (cond) {                                                             \
    } else                                                                  \
        ::cimmlc::detail::CheckMessageCollector(__FILE__, __LINE__, #cond)

#define CIMMLC_CHECK_EQ(a, b) CIMMLC_CHECK((a) == (b))
#define CIMMLC_CHECK_NE(a, b) CIMMLC_CHECK((a) != (b))
#define CIMMLC_CHECK_LE(a, b) CIMMLC_CHECK((a) <= (b))
#define CIMMLC_CHECK_LT(a, b) CIMMLC_CHECK((a) < (b))
#define CIMMLC_CHECK_GE(a, b) CIMMLC_CHECK((a) >= (b))
#define CIMMLC_CHECK_GT(a, b) CIMMLC_CHECK((a) > (b))

} // namespace cimmlc

#endif // CIMMLC_COMMON_LOGGING_H
