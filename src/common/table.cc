#include "common/table.h"

#include <algorithm>

#include "common/logging.h"

namespace cimmlc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    CIMMLC_CHECK(!header_.empty()) << "table needs at least one column";
}

void
TextTable::addRow(std::vector<std::string> row)
{
    CIMMLC_CHECK_EQ(row.size(), header_.size())
        << "row width mismatch: got " << row.size() << ", want "
        << header_.size();
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderLine = [&](char fill, char junction) {
        std::string out;
        out.push_back(junction);
        for (std::size_t c = 0; c < widths.size(); ++c) {
            out.append(widths[c] + 2, fill);
            out.push_back(junction);
        }
        out.push_back('\n');
        return out;
    };
    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string out = "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            out.push_back(' ');
            out.append(cell);
            out.append(widths[c] - cell.size() + 1, ' ');
            out.push_back('|');
        }
        out.push_back('\n');
        return out;
    };

    std::string out = renderLine('-', '+');
    out += renderRow(header_);
    out += renderLine('=', '+');
    for (const auto &row : rows_) {
        if (row.empty())
            out += renderLine('-', '+');
        else
            out += renderRow(row);
    }
    out += renderLine('-', '+');
    return out;
}

} // namespace cimmlc
