/**
 * @file
 * Minimal POSIX stream-socket wrappers and the kvjson frame transport
 * the compile-service daemon speaks (`cimmlc.rpc.v1`, see
 * daemon/protocol.h).
 *
 * Sockets are RAII file descriptors; listeners bind either a
 * Unix-domain path (the default daemon transport) or localhost TCP
 * (for containerized clients). Framing is deliberately text-first so a
 * captured stream stays debuggable:
 *
 *   cimmlc-rpc <LEN>\n
 *   <LEN bytes of kvjson>\n
 *
 * where LEN counts only the kvjson payload. Both sides enforce a hard
 * frame-size ceiling so a corrupt header cannot trigger an unbounded
 * allocation.
 */
#ifndef CIMMLC_COMMON_SOCKET_H
#define CIMMLC_COMMON_SOCKET_H

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/status.h"

namespace cimmlc {

/** Hard ceiling on one frame's kvjson payload (64 MiB). */
constexpr std::int64_t kMaxFrameBytes = 64ll * 1024 * 1024;

/**
 * An owned, connected stream-socket file descriptor. Move-only; the
 * destructor closes the descriptor.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    ~Socket() { close(); }

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Closes the descriptor (idempotent). */
    void close();

    /** Shuts down both directions, unblocking a peer reader, without
     * releasing the descriptor (a concurrent reader may still own a
     * recv() on it). */
    void shutdownBoth();

    /** Writes all @p size bytes (handles short writes; EPIPE-safe:
     * SIGPIPE is suppressed per-call). */
    Status sendAll(const void *data, std::size_t size);

    /**
     * Reads exactly @p size bytes. A clean EOF before the first byte
     * reports kNotFound ("connection closed"); a mid-buffer EOF or any
     * socket error reports kInternal.
     */
    Status recvAll(void *data, std::size_t size);

  private:
    int fd_ = -1;
};

/** Connects to a Unix-domain socket at @p path. */
StatusOr<Socket> connectUnix(const std::string &path);

/** Connects to TCP @p host : @p port (numeric IPv4 host, e.g.
 * "127.0.0.1"). */
StatusOr<Socket> connectTcp(const std::string &host, int port);

/**
 * A bound, listening socket. Move-only; closing a Unix listener
 * unlinks its path.
 */
class Listener
{
  public:
    Listener() = default;
    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;
    ~Listener() { close(); }

    /** Binds and listens on a Unix-domain @p path (an existing stale
     * socket file is replaced). */
    static StatusOr<Listener> listenUnix(const std::string &path);

    /** Binds and listens on 127.0.0.1:@p port; 0 picks an ephemeral
     * port (see boundPort()). */
    static StatusOr<Listener> listenTcp(int port);

    bool valid() const { return fd_ >= 0; }

    /** The actual TCP port bound (after listenTcp(0)); 0 for Unix. */
    int boundPort() const { return port_; }

    /**
     * Blocks for the next connection. When the listener is closed from
     * another thread (the daemon's stop path), reports kNotFound.
     */
    StatusOr<Socket> accept();

    /** Closes the listening descriptor, unblocking accept(). */
    void close();

  private:
    int fd_ = -1;
    int port_ = 0;
    std::string unix_path_;
};

/** Serializes @p doc as one compact-kvjson frame onto @p socket. */
Status sendFrame(Socket &socket, const ConfigValue &doc);

/**
 * Reads one frame and parses its payload. kNotFound means the peer
 * closed the connection cleanly between frames; anything else
 * malformed (bad magic, oversized length, truncated payload, kvjson
 * parse failure) is an error with context.
 */
StatusOr<ConfigValue> recvFrame(Socket &socket);

} // namespace cimmlc

#endif // CIMMLC_COMMON_SOCKET_H
