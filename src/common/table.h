/**
 * @file
 * ASCII table renderer used by the bench harness to print paper-style
 * result tables (expected vs measured rows).
 */
#ifndef CIMMLC_COMMON_TABLE_H
#define CIMMLC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace cimmlc {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"network", "speedup (paper)", "speedup (ours)"});
 *   t.addRow({"ResNet18", "25.4x", "24.1x"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Appends a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Appends a horizontal separator line. */
    void addSeparator();

    /** Renders the table with box-drawing borders. */
    std::string render() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cimmlc

#endif // CIMMLC_COMMON_TABLE_H
