/**
 * @file
 * Node and attribute types of the DNN computation-graph IR.
 *
 * This IR plays the role ONNX plays in the paper (Section 3.3.1): nodes are
 * operators, edges are tensors with inferred shapes, and scheduling passes
 * annotate nodes with optimization attributes (duplication factors, core
 * assignments) as compilation progresses.
 */
#ifndef CIMMLC_GRAPH_NODE_H
#define CIMMLC_GRAPH_NODE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cimmlc {

using NodeId = std::int32_t;
using TensorId = std::int32_t;
constexpr NodeId kInvalidNode = -1;
constexpr TensorId kInvalidTensor = -1;

/** Operator vocabulary. */
enum class OpKind {
    kInput,         //!< graph input placeholder
    kConv2d,        //!< CIM-mappable; weights OIHW
    kLinear,        //!< CIM-mappable; weights [out, in]
    kMatMul,        //!< dynamic matmul (both operands are activations)
    kRelu,
    kGelu,
    kSoftmax,
    kLayerNorm,
    kMaxPool2d,
    kAvgPool2d,
    kGlobalAvgPool,
    kAdd,           //!< elementwise residual add
    kConcat,        //!< channel concatenation
    kFlatten,       //!< NCHW -> [N, CHW]
    kReshape,       //!< metadata-only shape change
    kIdentity,
};

/** Human-readable operator name (e.g. "conv2d"). */
const char *opKindName(OpKind kind);

/** True for operators whose weights live in CIM crossbars. */
bool isCimMappable(OpKind kind);

/** True for operators executed by the tier ALUs (DCOM lowering). */
bool isDigitalCompute(OpKind kind);

/** True for zero-cost metadata operators. */
bool isShapeOnly(OpKind kind);

// The defaulted comparison operators below require C++20; CMake enforces
// cxx_std_20, and this guard turns an accidental -std=c++17 build into one
// clear diagnostic instead of a cascade of operator== errors.
static_assert(__cplusplus >= 202002L,
              "cimmlc requires C++20 (defaulted operator==)");

/** Attributes for kConv2d. */
struct Conv2dAttrs {
    std::int64_t out_channels = 0;
    std::int64_t kernel_h = 0;
    std::int64_t kernel_w = 0;
    std::int64_t stride = 1;
    std::int64_t padding = 0;

    bool operator==(const Conv2dAttrs &) const = default;
};

/** Attributes for kLinear. */
struct LinearAttrs {
    std::int64_t out_features = 0;

    bool operator==(const LinearAttrs &) const = default;
};

/** Attributes for kMaxPool2d / kAvgPool2d. */
struct Pool2dAttrs {
    std::int64_t kernel = 2;
    std::int64_t stride = 2;
    std::int64_t padding = 0;

    bool operator==(const Pool2dAttrs &) const = default;
};

/** Attributes for kMatMul (activation x activation). */
struct MatMulAttrs {
    //! number of attention heads sharing this matmul (cost model only)
    std::int64_t heads = 1;
    //! multiply lhs by rhs^T instead of rhs
    bool transpose_rhs = false;

    bool operator==(const MatMulAttrs &) const = default;
};

/** Attributes for kReshape. */
struct ReshapeAttrs {
    std::vector<std::int64_t> new_dims;

    bool operator==(const ReshapeAttrs &) const = default;
};

using NodeAttrs = std::variant<std::monostate, Conv2dAttrs, LinearAttrs,
                               Pool2dAttrs, MatMulAttrs, ReshapeAttrs>;

/**
 * A single operator instance.
 *
 * Scheduling passes fill in the `duplication` and `segment` fields — the
 * paper's "adding attributes to the nodes in the ONNX graph"
 * (Section 3.3.1).
 */
struct Node {
    NodeId id = kInvalidNode;
    std::string name;
    OpKind kind = OpKind::kIdentity;
    NodeAttrs attrs;
    std::vector<TensorId> inputs;
    TensorId output = kInvalidTensor;

    /** Typed attribute accessors; abort on kind mismatch. */
    const Conv2dAttrs &conv() const { return std::get<Conv2dAttrs>(attrs); }
    const LinearAttrs &linear() const
    {
        return std::get<LinearAttrs>(attrs);
    }
    const Pool2dAttrs &pool() const { return std::get<Pool2dAttrs>(attrs); }
    const MatMulAttrs &matmul() const
    {
        return std::get<MatMulAttrs>(attrs);
    }
    const ReshapeAttrs &reshape() const
    {
        return std::get<ReshapeAttrs>(attrs);
    }
};

/** A tensor edge between operators. */
struct ValueInfo {
    TensorId id = kInvalidTensor;
    std::string name;
    //! dims, NCHW for 4-d activations
    std::vector<std::int64_t> dims;
    NodeId producer = kInvalidNode;
    std::vector<NodeId> consumers;

    std::int64_t
    numel() const
    {
        std::int64_t total = 1;
        for (std::int64_t d : dims)
            total *= d;
        return total;
    }
};

} // namespace cimmlc

#endif // CIMMLC_GRAPH_NODE_H
