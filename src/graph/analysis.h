/**
 * @file
 * Per-node analysis queries the scheduler relies on: the weight matrix a
 * node contributes to the crossbars, its MAC count, and the number of MVM
 * issues (sliding windows) it performs per inference.
 */
#ifndef CIMMLC_GRAPH_ANALYSIS_H
#define CIMMLC_GRAPH_ANALYSIS_H

#include <cstdint>
#include <optional>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/node.h"

namespace cimmlc {

/**
 * Dimensions of the weight matrix a CIM-mappable node maps onto crossbars
 * using the paper's Figure 7 convention: rows = reduction dimension
 * (C_in * kh * kw for conv, in_features for linear), cols = output
 * dimension.
 */
struct WeightMatrixShape {
    std::int64_t rows = 0;
    std::int64_t cols = 0;

    bool operator==(const WeightMatrixShape &) const = default;
};

/** Weight matrix of @p node, or nullopt for non-CIM operators. */
std::optional<WeightMatrixShape> weightMatrixShape(const Graph &graph,
                                                   NodeId node);

/**
 * Number of matrix-vector products one inference issues through @p node:
 * N * outH * outW for conv (one per sliding window, Figure 12), the
 * number of row vectors for linear. Zero for non-CIM operators.
 */
std::int64_t mvmCount(const Graph &graph, NodeId node);

/** Multiply-accumulate count of @p node (CIM or dynamic matmul). */
std::int64_t macCount(const Graph &graph, NodeId node);

/** Elementwise op count for digital (ALU) operators; 0 otherwise. */
std::int64_t aluOpCount(const Graph &graph, NodeId node);

/** Output activation element count of @p node. */
std::int64_t outputElements(const Graph &graph, NodeId node);

/**
 * Builds the topological-prefix subgraph keeping every graph input and
 * the first @p compute_nodes non-input operators of the topo order —
 * the cheap workload proxy the budgeted search engine prices halving
 * rungs with (see search/halving.h and
 * CompileRequest::workload_prefix_nodes).
 *
 * The prefix is always extended through the first CIM-mappable
 * operator so the result stays schedulable, and is clamped to the
 * whole graph when @p compute_nodes covers it. Kept tensors whose
 * consumers were all cut (and the original outputs that survive)
 * become the prefix's outputs. Installed weights of kept nodes are
 * carried over. The prefix graph's name carries a "#prefixN" marker so
 * it can never be mistaken for the full workload in caches or reports.
 *
 * Fails when @p compute_nodes < 1 or the graph has no CIM-mappable
 * operator at all.
 */
StatusOr<Graph> topoPrefix(const Graph &graph,
                           std::int64_t compute_nodes);

} // namespace cimmlc

#endif // CIMMLC_GRAPH_ANALYSIS_H
