/**
 * @file
 * Per-node analysis queries the scheduler relies on: the weight matrix a
 * node contributes to the crossbars, its MAC count, and the number of MVM
 * issues (sliding windows) it performs per inference.
 */
#ifndef CIMMLC_GRAPH_ANALYSIS_H
#define CIMMLC_GRAPH_ANALYSIS_H

#include <cstdint>
#include <optional>

#include "graph/node.h"

namespace cimmlc {

class Graph;

/**
 * Dimensions of the weight matrix a CIM-mappable node maps onto crossbars
 * using the paper's Figure 7 convention: rows = reduction dimension
 * (C_in * kh * kw for conv, in_features for linear), cols = output
 * dimension.
 */
struct WeightMatrixShape {
    std::int64_t rows = 0;
    std::int64_t cols = 0;

    bool operator==(const WeightMatrixShape &) const = default;
};

/** Weight matrix of @p node, or nullopt for non-CIM operators. */
std::optional<WeightMatrixShape> weightMatrixShape(const Graph &graph,
                                                   NodeId node);

/**
 * Number of matrix-vector products one inference issues through @p node:
 * N * outH * outW for conv (one per sliding window, Figure 12), the
 * number of row vectors for linear. Zero for non-CIM operators.
 */
std::int64_t mvmCount(const Graph &graph, NodeId node);

/** Multiply-accumulate count of @p node (CIM or dynamic matmul). */
std::int64_t macCount(const Graph &graph, NodeId node);

/** Elementwise op count for digital (ALU) operators; 0 otherwise. */
std::int64_t aluOpCount(const Graph &graph, NodeId node);

/** Output activation element count of @p node. */
std::int64_t outputElements(const Graph &graph, NodeId node);

} // namespace cimmlc

#endif // CIMMLC_GRAPH_ANALYSIS_H
