#include "graph/analysis.h"

#include "common/logging.h"
#include "graph/graph.h"

namespace cimmlc {

std::optional<WeightMatrixShape>
weightMatrixShape(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    if (n.kind == OpKind::kConv2d) {
        const auto &a = n.conv();
        const auto &in = graph.tensor(n.inputs[0]).dims;
        return WeightMatrixShape{in[1] * a.kernel_h * a.kernel_w,
                                 a.out_channels};
    }
    if (n.kind == OpKind::kLinear) {
        const auto &a = n.linear();
        const auto &in = graph.tensor(n.inputs[0]).dims;
        return WeightMatrixShape{in.back(), a.out_features};
    }
    return std::nullopt;
}

std::int64_t
mvmCount(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    if (n.kind == OpKind::kConv2d) {
        const auto &out = graph.tensor(n.output).dims;
        return out[0] * out[2] * out[3];
    }
    if (n.kind == OpKind::kLinear) {
        const auto &in = graph.tensor(n.inputs[0]).dims;
        std::int64_t rows = 1;
        for (std::size_t i = 0; i + 1 < in.size(); ++i)
            rows *= in[i];
        return rows;
    }
    return 0;
}

std::int64_t
macCount(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    if (isCimMappable(n.kind)) {
        const auto wm = weightMatrixShape(graph, node_id);
        return mvmCount(graph, node_id) * wm->rows * wm->cols;
    }
    if (n.kind == OpKind::kMatMul) {
        const auto &lhs = graph.tensor(n.inputs[0]).dims;
        const auto &out = graph.tensor(n.output).dims;
        std::int64_t batch_rows = 1;
        for (std::size_t i = 0; i + 1 < lhs.size(); ++i)
            batch_rows *= lhs[i];
        return batch_rows * lhs.back() * out.back();
    }
    return 0;
}

std::int64_t
aluOpCount(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    switch (n.kind) {
      case OpKind::kRelu:
      case OpKind::kAdd:
      case OpKind::kConcat:
      case OpKind::kIdentity:
        return outputElements(graph, node_id);
      case OpKind::kGelu:
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
        // Transcendental-heavy ops count several ALU ops per element.
        return 4 * outputElements(graph, node_id);
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d: {
        const auto &a = n.pool();
        return outputElements(graph, node_id) * a.kernel * a.kernel;
      }
      case OpKind::kGlobalAvgPool: {
        const auto &in = graph.tensor(n.inputs[0]).dims;
        return in[0] * in[1] * in[2] * in[3];
      }
      case OpKind::kMatMul:
        return 2 * macCount(graph, node_id);
      default:
        return 0;
    }
}

std::int64_t
outputElements(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    return graph.tensor(n.output).numel();
}

} // namespace cimmlc
