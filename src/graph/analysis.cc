#include "graph/analysis.h"

#include "common/logging.h"
#include "common/strutil.h"
#include "graph/graph.h"

namespace cimmlc {

std::optional<WeightMatrixShape>
weightMatrixShape(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    if (n.kind == OpKind::kConv2d) {
        const auto &a = n.conv();
        const auto &in = graph.tensor(n.inputs[0]).dims;
        return WeightMatrixShape{in[1] * a.kernel_h * a.kernel_w,
                                 a.out_channels};
    }
    if (n.kind == OpKind::kLinear) {
        const auto &a = n.linear();
        const auto &in = graph.tensor(n.inputs[0]).dims;
        return WeightMatrixShape{in.back(), a.out_features};
    }
    return std::nullopt;
}

std::int64_t
mvmCount(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    if (n.kind == OpKind::kConv2d) {
        const auto &out = graph.tensor(n.output).dims;
        return out[0] * out[2] * out[3];
    }
    if (n.kind == OpKind::kLinear) {
        const auto &in = graph.tensor(n.inputs[0]).dims;
        std::int64_t rows = 1;
        for (std::size_t i = 0; i + 1 < in.size(); ++i)
            rows *= in[i];
        return rows;
    }
    return 0;
}

std::int64_t
macCount(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    if (isCimMappable(n.kind)) {
        const auto wm = weightMatrixShape(graph, node_id);
        return mvmCount(graph, node_id) * wm->rows * wm->cols;
    }
    if (n.kind == OpKind::kMatMul) {
        const auto &lhs = graph.tensor(n.inputs[0]).dims;
        const auto &out = graph.tensor(n.output).dims;
        std::int64_t batch_rows = 1;
        for (std::size_t i = 0; i + 1 < lhs.size(); ++i)
            batch_rows *= lhs[i];
        return batch_rows * lhs.back() * out.back();
    }
    return 0;
}

std::int64_t
aluOpCount(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    switch (n.kind) {
      case OpKind::kRelu:
      case OpKind::kAdd:
      case OpKind::kConcat:
      case OpKind::kIdentity:
        return outputElements(graph, node_id);
      case OpKind::kGelu:
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
        // Transcendental-heavy ops count several ALU ops per element.
        return 4 * outputElements(graph, node_id);
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d: {
        const auto &a = n.pool();
        return outputElements(graph, node_id) * a.kernel * a.kernel;
      }
      case OpKind::kGlobalAvgPool: {
        const auto &in = graph.tensor(n.inputs[0]).dims;
        return in[0] * in[1] * in[2] * in[3];
      }
      case OpKind::kMatMul:
        return 2 * macCount(graph, node_id);
      default:
        return 0;
    }
}

std::int64_t
outputElements(const Graph &graph, NodeId node_id)
{
    const Node &n = graph.node(node_id);
    return graph.tensor(n.output).numel();
}

StatusOr<Graph>
topoPrefix(const Graph &graph, std::int64_t compute_nodes)
{
    if (compute_nodes < 1)
        return invalidArgument(
            "topoPrefix: compute_nodes must be >= 1");

    // Decide which non-input nodes survive: the first compute_nodes of
    // the topo order, extended until the prefix contains at least one
    // CIM-mappable operator so the scheduler has something to map.
    const std::vector<NodeId> order = graph.topoOrder();
    std::vector<NodeId> kept;
    bool has_mappable = false;
    for (NodeId id : order) {
        const Node &node = graph.node(id);
        if (node.kind == OpKind::kInput)
            continue;
        const bool within =
            static_cast<std::int64_t>(kept.size()) < compute_nodes;
        if (!within && has_mappable)
            break;
        kept.push_back(id);
        if (isCimMappable(node.kind))
            has_mappable = true;
    }
    if (!has_mappable)
        return failedPrecondition(
            "topoPrefix: graph '" + graph.name()
            + "' has no CIM-mappable operator to anchor a prefix");

    Graph prefix(strformat("%s#prefix%zu", graph.name().c_str(),
                           kept.size()));
    std::vector<TensorId> tensor_map(graph.tensorCount(),
                                     kInvalidTensor);
    for (TensorId input : graph.inputs()) {
        const ValueInfo &info = graph.tensor(input);
        tensor_map[static_cast<std::size_t>(input)] =
            prefix.addInput(info.name, info.dims);
    }
    std::vector<bool> is_kept(graph.nodeCount(), false);
    for (NodeId id : kept) {
        const Node &node = graph.node(id);
        std::vector<TensorId> inputs;
        inputs.reserve(node.inputs.size());
        for (TensorId in : node.inputs) {
            const TensorId mapped =
                tensor_map[static_cast<std::size_t>(in)];
            // Topo order guarantees every producer precedes its
            // consumers, so a kept node only references mapped tensors.
            CIMMLC_CHECK_NE(mapped, kInvalidTensor)
                << "prefix node '" << node.name
                << "' references a tensor outside the prefix";
            inputs.push_back(mapped);
        }
        const TensorId out = prefix.addNode(node.kind, node.attrs,
                                            std::move(inputs), node.name);
        tensor_map[static_cast<std::size_t>(node.output)] = out;
        is_kept[static_cast<std::size_t>(id)] = true;
        if (graph.hasWeight(id))
            prefix.setWeight(
                static_cast<NodeId>(prefix.nodeCount() - 1),
                graph.weight(id));
    }

    // Outputs: kept non-input tensors that lost all their consumers to
    // the cut, plus the original outputs that survive. De-duplicated,
    // in original tensor order for determinism.
    std::vector<bool> is_output(graph.tensorCount(), false);
    for (TensorId out : graph.outputs())
        is_output[static_cast<std::size_t>(out)] = true;
    for (TensorId id = 0;
         id < static_cast<TensorId>(graph.tensorCount()); ++id) {
        const TensorId mapped = tensor_map[static_cast<std::size_t>(id)];
        if (mapped == kInvalidTensor)
            continue;
        const ValueInfo &info = graph.tensor(id);
        if (info.producer != kInvalidNode
            && graph.node(info.producer).kind == OpKind::kInput)
            continue;
        bool consumed = false;
        for (NodeId consumer : info.consumers) {
            if (is_kept[static_cast<std::size_t>(consumer)]) {
                consumed = true;
                break;
            }
        }
        if (!consumed || is_output[static_cast<std::size_t>(id)])
            prefix.markOutput(mapped);
    }
    CIMMLC_RETURN_IF_ERROR(prefix.validate().withContext("topoPrefix"));
    return prefix;
}

} // namespace cimmlc
