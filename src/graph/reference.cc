#include "graph/reference.h"

#include "common/logging.h"
#include "common/strutil.h"
#include "tensor/ops.h"

namespace cimmlc {

namespace {

/** Fixed dequantization scale for float digital ops (gelu/softmax/ln). */
constexpr float kFloatScale = 1.0f / 16.0f;

TensorShape
shapeOf(const ValueInfo &info)
{
    return TensorShape(info.dims);
}

/** Applies the calibrated-or-fixed requant policy for one node. */
Int8Tensor
requantNode(const Int32Tensor &acc, NodeId node,
            const std::map<NodeId, RequantParams> &fixed,
            std::map<NodeId, RequantParams> *out_shifts)
{
    RequantParams params;
    auto it = fixed.find(node);
    if (it != fixed.end()) {
        params = it->second;
    } else {
        params = chooseRequantShift(acc);
    }
    (*out_shifts)[node] = params;
    return requantize(acc, params);
}

/** Runs a float elementwise/reduction op through the shared ALU kernels. */
Int8Tensor
runFloatOp(OpKind kind, const Int8Tensor &input)
{
    FloatTensor f = dequantize(input, kFloatScale);
    switch (kind) {
      case OpKind::kGelu:
        f = ops::gelu(f);
        break;
      case OpKind::kSoftmax:
        f = ops::softmax(f);
        break;
      case OpKind::kLayerNorm:
        f = ops::layerNorm(f);
        break;
      default:
        panic("runFloatOp on non-float op");
    }
    return quantizeFloat(f, kFloatScale);
}

} // namespace

const Int8Tensor &
ReferenceResult::output(const Graph &graph) const
{
    CIMMLC_CHECK(!graph.outputs().empty());
    auto it = tensors.find(graph.outputs()[0]);
    CIMMLC_CHECK(it != tensors.end()) << "output tensor was not computed";
    return it->second;
}

StatusOr<ReferenceResult>
runReference(const Graph &graph,
             const std::map<TensorId, Int8Tensor> &inputs,
             const std::map<NodeId, RequantParams> &fixed_shifts)
{
    CIMMLC_RETURN_IF_ERROR(graph.validate());

    ReferenceResult result;
    auto &values = result.tensors;

    for (TensorId in : graph.inputs()) {
        auto it = inputs.find(in);
        if (it == inputs.end()) {
            return invalidArgument(strformat(
                "missing input tensor %d (%s)", in,
                graph.tensor(in).name.c_str()));
        }
        if (it->second.shape() != shapeOf(graph.tensor(in))) {
            return invalidArgument(strformat(
                "input %d shape mismatch: got %s want %s", in,
                it->second.shape().toString().c_str(),
                shapeOf(graph.tensor(in)).toString().c_str()));
        }
        values.emplace(in, it->second);
    }

    for (NodeId id : graph.topoOrder()) {
        const Node &n = graph.node(id);
        if (n.kind == OpKind::kInput)
            continue;
        auto in = [&](std::size_t i) -> const Int8Tensor & {
            auto it = values.find(n.inputs[i]);
            CIMMLC_CHECK(it != values.end())
                << "tensor " << n.inputs[i] << " not yet computed";
            return it->second;
        };

        Int8Tensor out;
        switch (n.kind) {
          case OpKind::kConv2d: {
            if (!graph.hasWeight(id)) {
                return failedPrecondition(
                    "node '" + n.name + "' has no weights installed");
            }
            const auto &a = n.conv();
            Int32Tensor acc =
                ops::conv2d(in(0), graph.weight(id), a.stride, a.padding);
            out = requantNode(acc, id, fixed_shifts, &result.shifts);
            break;
          }
          case OpKind::kLinear: {
            if (!graph.hasWeight(id)) {
                return failedPrecondition(
                    "node '" + n.name + "' has no weights installed");
            }
            // Flatten leading dims into rows for >2-d inputs.
            const Int8Tensor &x = in(0);
            const std::int64_t cols = x.shape().dim(x.shape().rank() - 1);
            const std::int64_t rows = x.numel() / cols;
            Int8Tensor x2(TensorShape({rows, cols}), x.data());
            Int32Tensor acc = ops::linear(x2, graph.weight(id));
            Int8Tensor q =
                requantNode(acc, id, fixed_shifts, &result.shifts);
            out = Int8Tensor(shapeOf(graph.tensor(n.output)),
                             std::move(q.data()));
            break;
          }
          case OpKind::kMatMul: {
            const auto &a = n.matmul();
            const Int8Tensor &lhs = in(0);
            const Int8Tensor &rhs = in(1);
            const std::int64_t l_cols =
                lhs.shape().dim(lhs.shape().rank() - 1);
            const std::int64_t l_rows = lhs.numel() / l_cols;
            Int8Tensor lhs2(TensorShape({l_rows, l_cols}), lhs.data());
            const std::int64_t r_cols =
                rhs.shape().dim(rhs.shape().rank() - 1);
            const std::int64_t r_rows = rhs.numel() / r_cols;
            Int8Tensor rhs2(TensorShape({r_rows, r_cols}), rhs.data());
            Int32Tensor acc;
            if (a.transpose_rhs) {
                acc = ops::linear(lhs2, rhs2); // lhs x rhs^T
            } else {
                acc = ops::matmul(lhs2, rhs2);
            }
            Int8Tensor q =
                requantNode(acc, id, fixed_shifts, &result.shifts);
            out = Int8Tensor(shapeOf(graph.tensor(n.output)),
                             std::move(q.data()));
            break;
          }
          case OpKind::kRelu:
            out = ops::relu(in(0));
            break;
          case OpKind::kGelu:
          case OpKind::kSoftmax:
          case OpKind::kLayerNorm:
            out = runFloatOp(n.kind, in(0));
            break;
          case OpKind::kMaxPool2d: {
            const auto &a = n.pool();
            out = ops::maxPool2d(in(0), a.kernel, a.stride, a.padding);
            break;
          }
          case OpKind::kAvgPool2d: {
            const auto &a = n.pool();
            out = ops::avgPool2d(in(0), a.kernel, a.stride, a.padding);
            break;
          }
          case OpKind::kGlobalAvgPool:
            out = ops::globalAvgPool(in(0));
            break;
          case OpKind::kAdd:
            out = ops::addSaturating(in(0), in(1));
            break;
          case OpKind::kConcat: {
            // Channel-wise concat over NCHW.
            const TensorShape out_shape = shapeOf(graph.tensor(n.output));
            Int8Tensor cat(out_shape);
            std::int64_t channel_base = 0;
            for (std::size_t i = 0; i < n.inputs.size(); ++i) {
                const Int8Tensor &piece = in(i);
                const std::int64_t C = piece.shape().dim(1);
                const std::int64_t HW =
                    piece.shape().dim(2) * piece.shape().dim(3);
                for (std::int64_t c = 0; c < C; ++c) {
                    for (std::int64_t j = 0; j < HW; ++j) {
                        cat[(channel_base + c) * HW + j] =
                            piece[c * HW + j];
                    }
                }
                channel_base += C;
            }
            out = std::move(cat);
            break;
          }
          case OpKind::kFlatten:
          case OpKind::kReshape:
          case OpKind::kIdentity: {
            const Int8Tensor &x = in(0);
            out = Int8Tensor(shapeOf(graph.tensor(n.output)), x.data());
            break;
          }
          case OpKind::kInput:
            break;
        }
        values.emplace(n.output, std::move(out));
    }

    return result;
}

} // namespace cimmlc
