#include "graph/graph.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/strutil.h"
#include "graph/analysis.h"
#include "tensor/shape.h"

namespace cimmlc {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kInput: return "input";
      case OpKind::kConv2d: return "conv2d";
      case OpKind::kLinear: return "linear";
      case OpKind::kMatMul: return "matmul";
      case OpKind::kRelu: return "relu";
      case OpKind::kGelu: return "gelu";
      case OpKind::kSoftmax: return "softmax";
      case OpKind::kLayerNorm: return "layernorm";
      case OpKind::kMaxPool2d: return "maxpool2d";
      case OpKind::kAvgPool2d: return "avgpool2d";
      case OpKind::kGlobalAvgPool: return "globalavgpool";
      case OpKind::kAdd: return "add";
      case OpKind::kConcat: return "concat";
      case OpKind::kFlatten: return "flatten";
      case OpKind::kReshape: return "reshape";
      case OpKind::kIdentity: return "identity";
    }
    return "?";
}

bool
isCimMappable(OpKind kind)
{
    return kind == OpKind::kConv2d || kind == OpKind::kLinear;
}

bool
isDigitalCompute(OpKind kind)
{
    switch (kind) {
      case OpKind::kMatMul:
      case OpKind::kRelu:
      case OpKind::kGelu:
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
      case OpKind::kGlobalAvgPool:
      case OpKind::kAdd:
      case OpKind::kConcat:
        return true;
      default:
        return false;
    }
}

bool
isShapeOnly(OpKind kind)
{
    return kind == OpKind::kFlatten || kind == OpKind::kReshape ||
           kind == OpKind::kIdentity || kind == OpKind::kInput;
}

TensorId
Graph::addInput(const std::string &name, std::vector<std::int64_t> dims)
{
    Node node;
    node.id = static_cast<NodeId>(nodes_.size());
    node.name = name.empty() ? strformat("input%d", node.id) : name;
    node.kind = OpKind::kInput;
    const TensorId out = newTensor(node.name, std::move(dims), node.id);
    node.output = out;
    nodes_.push_back(std::move(node));
    inputs_.push_back(out);
    return out;
}

TensorId
Graph::newTensor(const std::string &name, std::vector<std::int64_t> dims,
                 NodeId producer)
{
    ValueInfo info;
    info.id = static_cast<TensorId>(tensors_.size());
    info.name = name;
    info.dims = std::move(dims);
    info.producer = producer;
    tensors_.push_back(std::move(info));
    return tensors_.back().id;
}

TensorId
Graph::addNode(OpKind kind, NodeAttrs attrs, std::vector<TensorId> inputs,
               const std::string &name)
{
    CIMMLC_CHECK_NE(kind, OpKind::kInput)
        << "use addInput for graph inputs";
    Node node;
    node.id = static_cast<NodeId>(nodes_.size());
    node.name = name.empty()
                    ? strformat("%s_%d", opKindName(kind), node.id)
                    : name;
    node.kind = kind;
    node.attrs = std::move(attrs);
    node.inputs = std::move(inputs);
    for (TensorId in : node.inputs) {
        CIMMLC_CHECK(in >= 0 &&
                     in < static_cast<TensorId>(tensors_.size()))
            << "node " << node.name << " references unknown tensor " << in;
        tensors_[static_cast<std::size_t>(in)].consumers.push_back(node.id);
    }
    std::vector<std::int64_t> out_dims =
        inferShape(kind, node.attrs, node.inputs, node.name);
    node.output = newTensor(node.name + ":out", std::move(out_dims),
                            node.id);
    const TensorId out = node.output;
    nodes_.push_back(std::move(node));
    return out;
}

void
Graph::markOutput(TensorId tensor)
{
    CIMMLC_CHECK(tensor >= 0 &&
                 tensor < static_cast<TensorId>(tensors_.size()));
    outputs_.push_back(tensor);
}

std::vector<std::int64_t>
Graph::inferShape(OpKind kind, const NodeAttrs &attrs,
                  const std::vector<TensorId> &ins,
                  const std::string &name) const
{
    auto dims_of = [&](std::size_t i) -> const std::vector<std::int64_t> & {
        CIMMLC_CHECK_LT(i, ins.size())
            << "node " << name << " is missing input " << i;
        return tensors_[static_cast<std::size_t>(ins[i])].dims;
    };

    switch (kind) {
      case OpKind::kInput:
        panic("inferShape on input node");
      case OpKind::kConv2d: {
        const auto &a = std::get<Conv2dAttrs>(attrs);
        const auto &in = dims_of(0);
        CIMMLC_CHECK_EQ(in.size(), 4u)
            << "conv2d input must be NCHW in node " << name;
        return {in[0], a.out_channels,
                convOutDim(in[2], a.kernel_h, a.stride, a.padding),
                convOutDim(in[3], a.kernel_w, a.stride, a.padding)};
      }
      case OpKind::kLinear: {
        const auto &a = std::get<LinearAttrs>(attrs);
        const auto &in = dims_of(0);
        CIMMLC_CHECK_GE(in.size(), 2u)
            << "linear input must be >= 2-d in node " << name;
        std::vector<std::int64_t> out = in;
        out.back() = a.out_features;
        return out;
      }
      case OpKind::kMatMul: {
        const auto &a = std::get<MatMulAttrs>(attrs);
        const auto &lhs = dims_of(0);
        const auto &rhs = dims_of(1);
        CIMMLC_CHECK_GE(lhs.size(), 2u);
        CIMMLC_CHECK_GE(rhs.size(), 2u);
        const std::int64_t lhs_k = lhs.back();
        const std::int64_t rhs_k =
            a.transpose_rhs ? rhs.back() : rhs[rhs.size() - 2];
        const std::int64_t rhs_n =
            a.transpose_rhs ? rhs[rhs.size() - 2] : rhs.back();
        CIMMLC_CHECK_EQ(lhs_k, rhs_k)
            << "matmul inner-dim mismatch in node " << name;
        std::vector<std::int64_t> out = lhs;
        out.back() = rhs_n;
        return out;
      }
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d: {
        const auto &a = std::get<Pool2dAttrs>(attrs);
        const auto &in = dims_of(0);
        CIMMLC_CHECK_EQ(in.size(), 4u)
            << "pool input must be NCHW in node " << name;
        return {in[0], in[1],
                convOutDim(in[2], a.kernel, a.stride, a.padding),
                convOutDim(in[3], a.kernel, a.stride, a.padding)};
      }
      case OpKind::kGlobalAvgPool: {
        const auto &in = dims_of(0);
        CIMMLC_CHECK_EQ(in.size(), 4u);
        return {in[0], in[1], 1, 1};
      }
      case OpKind::kAdd: {
        const auto &a = dims_of(0);
        const auto &b = dims_of(1);
        CIMMLC_CHECK(a == b)
            << "add operand shape mismatch in node " << name;
        return a;
      }
      case OpKind::kConcat: {
        CIMMLC_CHECK_GE(ins.size(), 1u);
        std::vector<std::int64_t> out = dims_of(0);
        CIMMLC_CHECK_GE(out.size(), 2u);
        for (std::size_t i = 1; i < ins.size(); ++i) {
            const auto &d = dims_of(i);
            CIMMLC_CHECK_EQ(d.size(), out.size());
            out[1] += d[1]; // channel concat
        }
        return out;
      }
      case OpKind::kFlatten: {
        const auto &in = dims_of(0);
        std::int64_t rest = 1;
        for (std::size_t i = 1; i < in.size(); ++i)
            rest *= in[i];
        return {in[0], rest};
      }
      case OpKind::kReshape: {
        const auto &a = std::get<ReshapeAttrs>(attrs);
        std::int64_t in_total =
            tensors_[static_cast<std::size_t>(ins[0])].numel();
        std::int64_t out_total = 1;
        for (std::int64_t d : a.new_dims)
            out_total *= d;
        CIMMLC_CHECK_EQ(in_total, out_total)
            << "reshape element-count mismatch in node " << name;
        return a.new_dims;
      }
      case OpKind::kRelu:
      case OpKind::kGelu:
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
      case OpKind::kIdentity:
        return dims_of(0);
    }
    panic("unhandled op kind in inferShape");
}

TensorId
Graph::conv2d(TensorId input, std::int64_t out_channels,
              std::int64_t kernel, std::int64_t stride,
              std::int64_t padding, const std::string &name)
{
    Conv2dAttrs attrs;
    attrs.out_channels = out_channels;
    attrs.kernel_h = kernel;
    attrs.kernel_w = kernel;
    attrs.stride = stride;
    attrs.padding = padding;
    return addNode(OpKind::kConv2d, attrs, {input}, name);
}

TensorId
Graph::linear(TensorId input, std::int64_t out_features,
              const std::string &name)
{
    LinearAttrs attrs;
    attrs.out_features = out_features;
    return addNode(OpKind::kLinear, attrs, {input}, name);
}

TensorId
Graph::matmul(TensorId lhs, TensorId rhs, std::int64_t heads,
              bool transpose_rhs, const std::string &name)
{
    MatMulAttrs attrs;
    attrs.heads = heads;
    attrs.transpose_rhs = transpose_rhs;
    return addNode(OpKind::kMatMul, attrs, {lhs, rhs}, name);
}

TensorId
Graph::relu(TensorId input, const std::string &name)
{
    return addNode(OpKind::kRelu, std::monostate{}, {input}, name);
}

TensorId
Graph::gelu(TensorId input, const std::string &name)
{
    return addNode(OpKind::kGelu, std::monostate{}, {input}, name);
}

TensorId
Graph::softmax(TensorId input, const std::string &name)
{
    return addNode(OpKind::kSoftmax, std::monostate{}, {input}, name);
}

TensorId
Graph::layerNorm(TensorId input, const std::string &name)
{
    return addNode(OpKind::kLayerNorm, std::monostate{}, {input}, name);
}

TensorId
Graph::maxPool2d(TensorId input, std::int64_t kernel, std::int64_t stride,
                 std::int64_t padding, const std::string &name)
{
    Pool2dAttrs attrs{kernel, stride, padding};
    return addNode(OpKind::kMaxPool2d, attrs, {input}, name);
}

TensorId
Graph::avgPool2d(TensorId input, std::int64_t kernel, std::int64_t stride,
                 std::int64_t padding, const std::string &name)
{
    Pool2dAttrs attrs{kernel, stride, padding};
    return addNode(OpKind::kAvgPool2d, attrs, {input}, name);
}

TensorId
Graph::globalAvgPool(TensorId input, const std::string &name)
{
    return addNode(OpKind::kGlobalAvgPool, std::monostate{}, {input}, name);
}

TensorId
Graph::add(TensorId a, TensorId b, const std::string &name)
{
    return addNode(OpKind::kAdd, std::monostate{}, {a, b}, name);
}

TensorId
Graph::concat(const std::vector<TensorId> &inputs, const std::string &name)
{
    return addNode(OpKind::kConcat, std::monostate{}, inputs, name);
}

TensorId
Graph::flatten(TensorId input, const std::string &name)
{
    return addNode(OpKind::kFlatten, std::monostate{}, {input}, name);
}

TensorId
Graph::reshape(TensorId input, std::vector<std::int64_t> dims,
               const std::string &name)
{
    ReshapeAttrs attrs;
    attrs.new_dims = std::move(dims);
    return addNode(OpKind::kReshape, attrs, {input}, name);
}

const Node &
Graph::node(NodeId id) const
{
    CIMMLC_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()))
        << "node id " << id << " out of range";
    return nodes_[static_cast<std::size_t>(id)];
}

Node &
Graph::mutableNode(NodeId id)
{
    CIMMLC_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()))
        << "node id " << id << " out of range";
    return nodes_[static_cast<std::size_t>(id)];
}

const ValueInfo &
Graph::tensor(TensorId id) const
{
    CIMMLC_CHECK(id >= 0 && id < static_cast<TensorId>(tensors_.size()))
        << "tensor id " << id << " out of range";
    return tensors_[static_cast<std::size_t>(id)];
}

std::vector<NodeId>
Graph::topoOrder() const
{
    std::vector<int> in_degree(nodes_.size(), 0);
    for (const Node &n : nodes_)
        in_degree[static_cast<std::size_t>(n.id)] =
            static_cast<int>(n.inputs.size());

    std::deque<NodeId> ready;
    for (const Node &n : nodes_) {
        if (n.inputs.empty())
            ready.push_back(n.id);
    }

    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    while (!ready.empty()) {
        const NodeId id = ready.front();
        ready.pop_front();
        order.push_back(id);
        const Node &n = nodes_[static_cast<std::size_t>(id)];
        if (n.output == kInvalidTensor)
            continue;
        for (NodeId consumer :
             tensors_[static_cast<std::size_t>(n.output)].consumers) {
            if (--in_degree[static_cast<std::size_t>(consumer)] == 0)
                ready.push_back(consumer);
        }
    }
    return order;
}

Status
Graph::validate() const
{
    if (nodes_.empty())
        return failedPrecondition("graph '" + name_ + "' is empty");
    if (outputs_.empty())
        return failedPrecondition("graph '" + name_ +
                                  "' has no marked outputs");
    for (const ValueInfo &t : tensors_) {
        for (std::int64_t d : t.dims) {
            if (d <= 0) {
                return internalError(strformat(
                    "tensor '%s' has non-positive dim", t.name.c_str()));
            }
        }
    }
    const std::vector<NodeId> order = topoOrder();
    if (order.size() != nodes_.size())
        return internalError("graph '" + name_ + "' contains a cycle");
    for (const Node &n : nodes_) {
        if (isCimMappable(n.kind)) {
            const auto wm = weightMatrixShape(*this, n.id);
            if (!wm.has_value()) {
                return internalError(strformat(
                    "CIM node '%s' has no weight matrix", n.name.c_str()));
            }
        }
    }
    return Status::ok();
}

std::int64_t
Graph::totalMacs() const
{
    std::int64_t total = 0;
    for (const Node &n : nodes_) {
        if (isCimMappable(n.kind))
            total += macCount(*this, n.id);
    }
    return total;
}

std::int64_t
Graph::totalWeights() const
{
    std::int64_t total = 0;
    for (const Node &n : nodes_) {
        const auto wm = weightMatrixShape(*this, n.id);
        if (wm.has_value())
            total += wm->rows * wm->cols;
    }
    return total;
}

std::string
Graph::summary() const
{
    std::ostringstream out;
    out << "graph '" << name_ << "': " << nodes_.size() << " nodes, "
        << humanCount(static_cast<double>(totalMacs())) << " MACs, "
        << humanCount(static_cast<double>(totalWeights())) << " weights\n";
    for (const Node &n : nodes_) {
        out << strformat("  [%3d] %-14s %-24s -> ", n.id, opKindName(n.kind),
                         n.name.c_str());
        const ValueInfo &t = tensors_[static_cast<std::size_t>(n.output)];
        out << "[";
        for (std::size_t i = 0; i < t.dims.size(); ++i) {
            if (i)
                out << ",";
            out << t.dims[i];
        }
        out << "]\n";
    }
    return out.str();
}

void
Graph::setWeight(NodeId node_id, Int8Tensor weight)
{
    const Node &n = node(node_id);
    CIMMLC_CHECK(isCimMappable(n.kind))
        << "node " << n.name << " does not take weights";
    weights_[node_id] = std::move(weight);
}

bool
Graph::hasWeight(NodeId node_id) const
{
    return weights_.count(node_id) > 0;
}

const Int8Tensor &
Graph::weight(NodeId node_id) const
{
    auto it = weights_.find(node_id);
    CIMMLC_CHECK(it != weights_.end())
        << "node " << node_id << " has no weights installed";
    return it->second;
}

void
Graph::randomizeWeights(Rng &rng, std::int64_t lo, std::int64_t hi)
{
    for (const Node &n : nodes_) {
        if (!isCimMappable(n.kind))
            continue;
        TensorShape shape;
        if (n.kind == OpKind::kConv2d) {
            const auto &a = n.conv();
            const auto &in = tensor(n.inputs[0]).dims;
            shape = TensorShape(
                {a.out_channels, in[1], a.kernel_h, a.kernel_w});
        } else {
            const auto &a = n.linear();
            const auto &in = tensor(n.inputs[0]).dims;
            shape = TensorShape({a.out_features, in.back()});
        }
        Int8Tensor w(shape);
        w.fillRandom(rng, lo, hi);
        weights_[n.id] = std::move(w);
    }
}

} // namespace cimmlc
