/**
 * @file
 * The DNN computation graph: construction API, shape inference,
 * topological ordering, validation, and weight storage for functional
 * simulation.
 */
#ifndef CIMMLC_GRAPH_GRAPH_H
#define CIMMLC_GRAPH_GRAPH_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/node.h"
#include "tensor/tensor.h"

namespace cimmlc {

/**
 * A directed acyclic computation graph.
 *
 * Builder methods (conv2d, linear, relu, ...) append a node, run shape
 * inference, and return the output TensorId so models compose naturally:
 * @code
 *   Graph g("toy");
 *   TensorId x = g.addInput("x", {1, 3, 32, 32});
 *   x = g.conv2d(x, 32, 3, 1, 1);
 *   x = g.relu(x);
 * @endcode
 */
class Graph
{
  public:
    explicit Graph(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    // ----- construction -------------------------------------------------

    /** Declares a graph input with the given shape. */
    TensorId addInput(const std::string &name,
                      std::vector<std::int64_t> dims);

    /** Generic node append; infers and registers the output shape. */
    TensorId addNode(OpKind kind, NodeAttrs attrs,
                     std::vector<TensorId> inputs,
                     const std::string &name = "");

    /** Marks @p tensor as a graph output. */
    void markOutput(TensorId tensor);

    // Typed builders.
    TensorId conv2d(TensorId input, std::int64_t out_channels,
                    std::int64_t kernel, std::int64_t stride,
                    std::int64_t padding, const std::string &name = "");
    TensorId linear(TensorId input, std::int64_t out_features,
                    const std::string &name = "");
    TensorId matmul(TensorId lhs, TensorId rhs, std::int64_t heads = 1,
                    bool transpose_rhs = false,
                    const std::string &name = "");
    TensorId relu(TensorId input, const std::string &name = "");
    TensorId gelu(TensorId input, const std::string &name = "");
    TensorId softmax(TensorId input, const std::string &name = "");
    TensorId layerNorm(TensorId input, const std::string &name = "");
    TensorId maxPool2d(TensorId input, std::int64_t kernel,
                       std::int64_t stride, std::int64_t padding = 0,
                       const std::string &name = "");
    TensorId avgPool2d(TensorId input, std::int64_t kernel,
                       std::int64_t stride, std::int64_t padding = 0,
                       const std::string &name = "");
    TensorId globalAvgPool(TensorId input, const std::string &name = "");
    TensorId add(TensorId a, TensorId b, const std::string &name = "");
    TensorId concat(const std::vector<TensorId> &inputs,
                    const std::string &name = "");
    TensorId flatten(TensorId input, const std::string &name = "");
    TensorId reshape(TensorId input, std::vector<std::int64_t> dims,
                     const std::string &name = "");

    // ----- inspection ---------------------------------------------------

    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t tensorCount() const { return tensors_.size(); }

    const Node &node(NodeId id) const;
    Node &mutableNode(NodeId id);
    const ValueInfo &tensor(TensorId id) const;

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<ValueInfo> &tensors() const { return tensors_; }
    const std::vector<TensorId> &inputs() const { return inputs_; }
    const std::vector<TensorId> &outputs() const { return outputs_; }

    /** Nodes in a valid execution order (Kahn's algorithm). */
    std::vector<NodeId> topoOrder() const;

    /** Structural checks: single producer, no cycles, known shapes. */
    Status validate() const;

    /** Sum of MAC operations across CIM-mappable nodes. */
    std::int64_t totalMacs() const;

    /** Total weight parameter count across CIM-mappable nodes. */
    std::int64_t totalWeights() const;

    /** Multi-line description for logs and docs. */
    std::string summary() const;

    // ----- weights (functional simulation) ------------------------------

    /** Installs an explicit weight tensor for @p node. */
    void setWeight(NodeId node, Int8Tensor weight);

    /** True when @p node has weights installed. */
    bool hasWeight(NodeId node) const;

    /** @pre hasWeight(node) */
    const Int8Tensor &weight(NodeId node) const;

    /** Fills every CIM-mappable node with deterministic random weights. */
    void randomizeWeights(Rng &rng, std::int64_t lo = -8,
                          std::int64_t hi = 8);

  private:
    std::vector<std::int64_t> inferShape(OpKind kind,
                                         const NodeAttrs &attrs,
                                         const std::vector<TensorId> &ins,
                                         const std::string &name) const;
    TensorId newTensor(const std::string &name,
                       std::vector<std::int64_t> dims, NodeId producer);

    std::string name_;
    std::vector<Node> nodes_;
    std::vector<ValueInfo> tensors_;
    std::vector<TensorId> inputs_;
    std::vector<TensorId> outputs_;
    std::map<NodeId, Int8Tensor> weights_;
};

} // namespace cimmlc

#endif // CIMMLC_GRAPH_GRAPH_H
