#include "graph/models.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strutil.h"

namespace cimmlc::models {

namespace {

/** conv3x3 + relu block used throughout the VGG family. */
TensorId
vggBlock(Graph *g, TensorId x, std::int64_t channels, int index)
{
    x = g->conv2d(x, channels, 3, 1, 1, strformat("conv%d", index));
    return g->relu(x, strformat("relu%d", index));
}

/** Builds a VGG body from a per-stage channel/conv-count spec. */
Graph
vggFromSpec(const std::string &name,
            const std::vector<std::pair<std::int64_t, int>> &stages,
            std::int64_t image, std::int64_t fc_dim,
            std::int64_t num_classes)
{
    Graph g(name);
    TensorId x = g.addInput("image", {1, 3, image, image});
    int conv_index = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto [channels, count] = stages[s];
        for (int i = 0; i < count; ++i)
            x = vggBlock(&g, x, channels, conv_index++);
        x = g.maxPool2d(x, 2, 2, 0, strformat("pool%zu", s));
    }
    x = g.flatten(x);
    x = g.linear(x, fc_dim, "fc0");
    x = g.relu(x);
    x = g.linear(x, fc_dim, "fc1");
    x = g.relu(x);
    x = g.linear(x, num_classes, "fc2");
    g.markOutput(x);
    return g;
}

/** ResNet v1 basic block: two 3x3 convs with identity/projection skip. */
TensorId
basicBlock(Graph *g, TensorId x, std::int64_t channels, std::int64_t stride,
           const std::string &prefix)
{
    TensorId identity = x;
    TensorId y = g->conv2d(x, channels, 3, stride, 1, prefix + "_conv1");
    y = g->relu(y, prefix + "_relu1");
    y = g->conv2d(y, channels, 3, 1, 1, prefix + "_conv2");
    const auto &in_dims = g->tensor(x).dims;
    if (stride != 1 || in_dims[1] != channels) {
        identity =
            g->conv2d(x, channels, 1, stride, 0, prefix + "_downsample");
    }
    y = g->add(y, identity, prefix + "_add");
    return g->relu(y, prefix + "_relu2");
}

/** ResNet v1 bottleneck block: 1x1 reduce, 3x3, 1x1 expand (x4). */
TensorId
bottleneckBlock(Graph *g, TensorId x, std::int64_t channels,
                std::int64_t stride, const std::string &prefix)
{
    const std::int64_t expanded = channels * 4;
    TensorId identity = x;
    TensorId y = g->conv2d(x, channels, 1, 1, 0, prefix + "_conv1");
    y = g->relu(y, prefix + "_relu1");
    y = g->conv2d(y, channels, 3, stride, 1, prefix + "_conv2");
    y = g->relu(y, prefix + "_relu2");
    y = g->conv2d(y, expanded, 1, 1, 0, prefix + "_conv3");
    const auto &in_dims = g->tensor(x).dims;
    if (stride != 1 || in_dims[1] != expanded) {
        identity =
            g->conv2d(x, expanded, 1, stride, 0, prefix + "_downsample");
    }
    y = g->add(y, identity, prefix + "_add");
    return g->relu(y, prefix + "_relu3");
}

/** Assembles a full ResNet from per-stage block counts. */
Graph
resnetFromSpec(const std::string &name, const std::vector<int> &blocks,
               bool bottleneck)
{
    Graph g(name);
    TensorId x = g.addInput("image", {1, 3, 224, 224});
    x = g.conv2d(x, 64, 7, 2, 3, "stem_conv");
    x = g.relu(x, "stem_relu");
    x = g.maxPool2d(x, 3, 2, 1, "stem_pool");

    const std::int64_t stage_channels[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (int b = 0; b < blocks[static_cast<std::size_t>(stage)]; ++b) {
            const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
            const std::string prefix =
                strformat("layer%d_block%d", stage + 1, b);
            if (bottleneck) {
                x = bottleneckBlock(&g, x, stage_channels[stage], stride,
                                    prefix);
            } else {
                x = basicBlock(&g, x, stage_channels[stage], stride,
                               prefix);
            }
        }
    }
    x = g.globalAvgPool(x, "gap");
    x = g.flatten(x);
    x = g.linear(x, 1000, "fc");
    g.markOutput(x);
    return g;
}

/** One pre-norm transformer encoder block. */
TensorId
vitBlock(Graph *g, TensorId x, const VitConfig &c, int index)
{
    const std::string p = strformat("block%d", index);
    // Attention: LN -> Q/K/V projections -> scores -> context -> proj.
    TensorId norm1 = g->layerNorm(x, p + "_ln1");
    TensorId q = g->linear(norm1, c.dim, p + "_q");
    TensorId k = g->linear(norm1, c.dim, p + "_k");
    TensorId v = g->linear(norm1, c.dim, p + "_v");
    TensorId scores = g->matmul(q, k, c.heads, /*transpose_rhs=*/true,
                                p + "_qkt");
    scores = g->softmax(scores, p + "_softmax");
    TensorId context = g->matmul(scores, v, c.heads, false, p + "_av");
    TensorId attn = g->linear(context, c.dim, p + "_proj");
    x = g->add(x, attn, p + "_add1");

    // MLP: LN -> fc1 -> gelu -> fc2.
    TensorId norm2 = g->layerNorm(x, p + "_ln2");
    TensorId h = g->linear(norm2, c.mlp_dim, p + "_fc1");
    h = g->gelu(h, p + "_gelu");
    h = g->linear(h, c.dim, p + "_fc2");
    return g->add(x, h, p + "_add2");
}

} // namespace

Graph
mlp(const std::vector<std::int64_t> &dims, bool relu_between)
{
    CIMMLC_CHECK_GE(dims.size(), 2u) << "mlp needs input and output dims";
    Graph g("mlp");
    TensorId x = g.addInput("features", {1, dims[0]});
    for (std::size_t i = 1; i < dims.size(); ++i) {
        x = g.linear(x, dims[i], strformat("fc%zu", i - 1));
        if (relu_between && i + 1 < dims.size())
            x = g.relu(x, strformat("relu%zu", i - 1));
    }
    g.markOutput(x);
    return g;
}

Graph
lenet5()
{
    Graph g("lenet5");
    TensorId x = g.addInput("image", {1, 1, 32, 32});
    x = g.conv2d(x, 6, 5, 1, 0, "conv1");
    x = g.relu(x);
    x = g.maxPool2d(x, 2, 2);
    x = g.conv2d(x, 16, 5, 1, 0, "conv2");
    x = g.relu(x);
    x = g.maxPool2d(x, 2, 2);
    x = g.flatten(x);
    x = g.linear(x, 120, "fc1");
    x = g.relu(x);
    x = g.linear(x, 84, "fc2");
    x = g.relu(x);
    x = g.linear(x, 10, "fc3");
    g.markOutput(x);
    return g;
}

Graph
convReluToy()
{
    // The Section 3.4 walkthrough: input (3,32,32), kernel (32,3,3,3),
    // stride 1, padding 1, followed by ReLU.
    Graph g("conv_relu_toy");
    TensorId x = g.addInput("image", {1, 3, 32, 32});
    x = g.conv2d(x, 32, 3, 1, 1, "conv");
    x = g.relu(x, "relu");
    g.markOutput(x);
    return g;
}

Graph
vgg7()
{
    // CIFAR-scale VGG7: 128C3-128C3-MP-256C3-256C3-MP-512C3-512C3-MP-FC.
    Graph g("vgg7");
    TensorId x = g.addInput("image", {1, 3, 32, 32});
    int conv_index = 0;
    for (std::int64_t channels : {128, 128}) {
        x = vggBlock(&g, x, channels, conv_index++);
    }
    x = g.maxPool2d(x, 2, 2);
    for (std::int64_t channels : {256, 256}) {
        x = vggBlock(&g, x, channels, conv_index++);
    }
    x = g.maxPool2d(x, 2, 2);
    for (std::int64_t channels : {512, 512}) {
        x = vggBlock(&g, x, channels, conv_index++);
    }
    x = g.maxPool2d(x, 2, 2);
    x = g.flatten(x);
    x = g.linear(x, 1024, "fc0");
    x = g.relu(x);
    x = g.linear(x, 10, "fc1");
    g.markOutput(x);
    return g;
}

Graph
macroCnn()
{
    Graph g("macro_cnn");
    TensorId x = g.addInput("image", {1, 1, 32, 32});
    x = g.conv2d(x, 8, 3, 1, 1, "conv1");
    x = g.relu(x);
    x = g.maxPool2d(x, 2, 2);
    x = g.conv2d(x, 32, 3, 1, 1, "conv2");
    x = g.relu(x);
    x = g.maxPool2d(x, 2, 2);
    x = g.conv2d(x, 32, 3, 1, 1, "conv3");
    x = g.relu(x);
    x = g.globalAvgPool(x, "gap");
    x = g.flatten(x);
    x = g.linear(x, 10, "fc");
    g.markOutput(x);
    return g;
}

Graph
vgg11()
{
    return vggFromSpec("vgg11",
                       {{64, 1}, {128, 1}, {256, 2}, {512, 2}, {512, 2}},
                       224, 4096, 1000);
}

Graph
vgg16()
{
    return vggFromSpec("vgg16",
                       {{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}},
                       224, 4096, 1000);
}

Graph
vgg19()
{
    return vggFromSpec("vgg19",
                       {{64, 2}, {128, 2}, {256, 4}, {512, 4}, {512, 4}},
                       224, 4096, 1000);
}

namespace {

/** Inception module: 1x1 / 3x3 / 5x5 / pool-proj branches concatenated. */
TensorId
inceptionBlock(Graph *g, TensorId x, std::int64_t c1, std::int64_t c3r,
               std::int64_t c3, std::int64_t c5r, std::int64_t c5,
               std::int64_t pool_proj, const std::string &prefix)
{
    TensorId b1 = g->conv2d(x, c1, 1, 1, 0, prefix + "_1x1");
    b1 = g->relu(b1);
    TensorId b3 = g->conv2d(x, c3r, 1, 1, 0, prefix + "_3x3r");
    b3 = g->relu(b3);
    b3 = g->conv2d(b3, c3, 3, 1, 1, prefix + "_3x3");
    b3 = g->relu(b3);
    TensorId b5 = g->conv2d(x, c5r, 1, 1, 0, prefix + "_5x5r");
    b5 = g->relu(b5);
    b5 = g->conv2d(b5, c5, 5, 1, 2, prefix + "_5x5");
    b5 = g->relu(b5);
    TensorId bp = g->maxPool2d(x, 3, 1, 1, prefix + "_pool");
    bp = g->conv2d(bp, pool_proj, 1, 1, 0, prefix + "_proj");
    bp = g->relu(bp);
    return g->concat({b1, b3, b5, bp}, prefix + "_concat");
}

} // namespace

Graph
googlenet()
{
    Graph g("googlenet");
    TensorId x = g.addInput("image", {1, 3, 224, 224});
    x = g.conv2d(x, 64, 7, 2, 3, "stem_conv1");
    x = g.relu(x);
    x = g.maxPool2d(x, 3, 2, 1, "stem_pool1");
    x = g.conv2d(x, 64, 1, 1, 0, "stem_conv2r");
    x = g.relu(x);
    x = g.conv2d(x, 192, 3, 1, 1, "stem_conv2");
    x = g.relu(x);
    x = g.maxPool2d(x, 3, 2, 1, "stem_pool2");

    x = inceptionBlock(&g, x, 64, 96, 128, 16, 32, 32, "i3a");
    x = inceptionBlock(&g, x, 128, 128, 192, 32, 96, 64, "i3b");
    x = g.maxPool2d(x, 3, 2, 1, "pool3");
    x = inceptionBlock(&g, x, 192, 96, 208, 16, 48, 64, "i4a");
    x = inceptionBlock(&g, x, 160, 112, 224, 24, 64, 64, "i4b");
    x = inceptionBlock(&g, x, 128, 128, 256, 24, 64, 64, "i4c");
    x = inceptionBlock(&g, x, 112, 144, 288, 32, 64, 64, "i4d");
    x = inceptionBlock(&g, x, 256, 160, 320, 32, 128, 128, "i4e");
    x = g.maxPool2d(x, 3, 2, 1, "pool4");
    x = inceptionBlock(&g, x, 256, 160, 320, 32, 128, 128, "i5a");
    x = inceptionBlock(&g, x, 384, 192, 384, 48, 128, 128, "i5b");
    x = g.globalAvgPool(x, "gap");
    x = g.flatten(x);
    x = g.linear(x, 1000, "fc");
    g.markOutput(x);
    return g;
}

Graph
inceptionToy()
{
    Graph g("inception_toy");
    TensorId x = g.addInput("image", {1, 4, 8, 8});
    x = inceptionBlock(&g, x, 4, 4, 6, 2, 4, 2, "block");
    x = g.globalAvgPool(x, "gap");
    x = g.flatten(x);
    x = g.linear(x, 10, "fc");
    g.markOutput(x);
    return g;
}

Graph
resnet18()
{
    return resnetFromSpec("resnet18", {2, 2, 2, 2}, /*bottleneck=*/false);
}

Graph
resnet34()
{
    return resnetFromSpec("resnet34", {3, 4, 6, 3}, /*bottleneck=*/false);
}

Graph
resnet50()
{
    return resnetFromSpec("resnet50", {3, 4, 6, 3}, /*bottleneck=*/true);
}

Graph
resnet101()
{
    return resnetFromSpec("resnet101", {3, 4, 23, 3}, /*bottleneck=*/true);
}

Graph
vit(const VitConfig &c)
{
    CIMMLC_CHECK_EQ(c.image % c.patch, 0)
        << "image size must be divisible by patch size";
    const std::int64_t tokens = (c.image / c.patch) * (c.image / c.patch);
    Graph g(strformat("vit_d%lld_l%lld",
                      static_cast<long long>(c.dim),
                      static_cast<long long>(c.depth)));
    TensorId x = g.addInput("image", {1, 3, c.image, c.image});
    // Patch embedding as a strided convolution, then tokens x dim layout.
    x = g.conv2d(x, c.dim, c.patch, c.patch, 0, "patch_embed");
    x = g.reshape(x, {tokens, c.dim}, "to_tokens");
    for (int i = 0; i < c.depth; ++i)
        x = vitBlock(&g, x, c, i);
    x = g.layerNorm(x, "final_ln");
    x = g.linear(x, 1000, "head");
    g.markOutput(x);
    return g;
}

Graph
vitBase()
{
    return vit(VitConfig{});
}

Graph
vitSmall()
{
    VitConfig c;
    c.dim = 384;
    c.heads = 6;
    c.mlp_dim = 1536;
    return vit(c);
}

Graph
vitTiny()
{
    VitConfig c;
    c.dim = 192;
    c.heads = 3;
    c.mlp_dim = 768;
    return vit(c);
}

Graph
byName(const std::string &name)
{
    const std::string key = toLower(name);
    if (key == "mlp")
        return mlp({784, 256, 128, 10});
    if (key == "lenet5")
        return lenet5();
    if (key == "conv_relu_toy")
        return convReluToy();
    if (key == "vgg7")
        return vgg7();
    if (key == "macro_cnn")
        return macroCnn();
    if (key == "vgg11")
        return vgg11();
    if (key == "vgg16")
        return vgg16();
    if (key == "vgg19")
        return vgg19();
    if (key == "googlenet")
        return googlenet();
    if (key == "inception_toy")
        return inceptionToy();
    if (key == "resnet18")
        return resnet18();
    if (key == "resnet34")
        return resnet34();
    if (key == "resnet50")
        return resnet50();
    if (key == "resnet101")
        return resnet101();
    if (key == "vit_base" || key == "vit")
        return vitBase();
    if (key == "vit_small")
        return vitSmall();
    if (key == "vit_tiny")
        return vitTiny();
    fatal("unknown model '" + name + "'");
}

StatusOr<Graph>
byNameChecked(const std::string &name)
{
    const std::string key = toLower(name);
    const std::vector<std::string> known = availableModels();
    if (std::find(known.begin(), known.end(), key) == known.end())
        return notFound("unknown model '" + name
                        + "' (see --list-models)");
    return byName(key);
}

std::vector<std::string>
availableModels()
{
    return {"mlp",       "lenet5",    "conv_relu_toy", "macro_cnn",
            "inception_toy", "vgg7",  "vgg11",         "vgg16",
            "vgg19",     "googlenet", "resnet18",      "resnet34",
            "resnet50",  "resnet101", "vit_tiny",      "vit_small",
            "vit_base"};
}

} // namespace cimmlc::models
