/**
 * @file
 * Text serialization of computation graphs in the kvjson format — the
 * interchange role ONNX plays for the paper's compiler. The CLI driver
 * and examples can load models from disk instead of the built-in zoo.
 *
 * Format sketch:
 * @code
 * {
 *   "name": "toy",
 *   "inputs": [{"name": "image", "dims": [1, 3, 32, 32]}],
 *   "nodes": [
 *     {"op": "conv2d", "name": "conv", "inputs": ["image"],
 *      "out_channels": 32, "kernel": 3, "stride": 1, "padding": 1},
 *     {"op": "relu", "inputs": ["conv"]}
 *   ],
 *   "outputs": ["relu"]
 * }
 * @endcode
 * Node inputs reference the *name* of the producing node (or graph
 * input); each node's output tensor takes its node's name.
 */
#ifndef CIMMLC_GRAPH_SERIALIZE_H
#define CIMMLC_GRAPH_SERIALIZE_H

#include <string>

#include "common/config.h"
#include "common/status.h"
#include "graph/graph.h"

namespace cimmlc {

/** Builds a graph from a parsed kvjson document. */
StatusOr<Graph> graphFromConfig(const ConfigValue &doc);

/** Parses a graph from kvjson text. */
StatusOr<Graph> graphFromText(const std::string &text);

/** Loads a graph from a kvjson file. */
StatusOr<Graph> graphFromFile(const std::string &path);

/** Serializes a graph (topology only; weights are not part of the
 * interchange format). */
ConfigValue graphToConfig(const Graph &graph);

} // namespace cimmlc

#endif // CIMMLC_GRAPH_SERIALIZE_H
