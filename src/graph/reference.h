/**
 * @file
 * Reference (oracle) executor for computation graphs.
 *
 * Plays the role of the PyTorch check in the paper's functional
 * verification (Section 4.1): it executes the graph directly with exact
 * int32 accumulation and produces both the activations and the per-node
 * requantization shifts. The functional simulator replays the compiled
 * meta-operator flow with the same shifts and must match bit-for-bit.
 */
#ifndef CIMMLC_GRAPH_REFERENCE_H
#define CIMMLC_GRAPH_REFERENCE_H

#include <map>

#include "common/status.h"
#include "graph/graph.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"

namespace cimmlc {

/** Activations and calibration data produced by a reference run. */
struct ReferenceResult {
    //! value of every tensor after execution
    std::map<TensorId, Int8Tensor> tensors;
    //! calibrated requantization shift per accumulating node
    std::map<NodeId, RequantParams> shifts;

    /** Value of the graph's first marked output. */
    const Int8Tensor &output(const Graph &graph) const;
};

/**
 * Executes @p graph over @p inputs.
 *
 * When @p fixed_shifts is empty, requantization shifts are calibrated
 * per node (smallest shift that avoids int8 overflow) and reported in
 * the result; otherwise the provided shifts are used, enabling an
 * apples-to-apples comparison with a simulator run.
 *
 * @pre every CIM-mappable node has weights installed.
 */
StatusOr<ReferenceResult>
runReference(const Graph &graph,
             const std::map<TensorId, Int8Tensor> &inputs,
             const std::map<NodeId, RequantParams> &fixed_shifts = {});

} // namespace cimmlc

#endif // CIMMLC_GRAPH_REFERENCE_H
