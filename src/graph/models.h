/**
 * @file
 * Model zoo: the networks the paper evaluates (VGG series, ResNet series,
 * ViT — Section 4.1) plus small nets used for functional verification.
 *
 * All builders use batch size 1 and 8-bit-quantized shapes. ImageNet models
 * take 3x224x224 inputs; the CIFAR-scale VGG7 takes 3x32x32, matching the
 * resource-constrained Jain et al. macro experiment (Figure 20(c)).
 */
#ifndef CIMMLC_GRAPH_MODELS_H
#define CIMMLC_GRAPH_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cimmlc::models {

/** Fully-connected net: dims[0] inputs through hidden layers to dims.back(). */
Graph mlp(const std::vector<std::int64_t> &dims, bool relu_between = true);

/** LeNet-5 style CNN on 1x32x32 input (functional-verification scale). */
Graph lenet5();

/** Two-conv toy used by the paper's Section 3.4 walkthrough. */
Graph convReluToy();

/** VGG7: CIFAR-scale 6-conv + 1-fc network (Jain et al. benchmark). */
Graph vgg7();

/**
 * VGG7-style CNN sized for single-macro deployment (~6K weights): the
 * Jain et al. comparison (Figure 20(c)) runs "under the same resource
 * constraints" as their 4-core macro, whose 16K-weight capacity is
 * ~300x too small for full VGG7 — see EXPERIMENTS.md.
 */
Graph macroCnn();

/** VGG-A (11 layers) on ImageNet. */
Graph vgg11();

/** VGG-D (16 layers) on ImageNet — the PUMA / Poly-Schedule benchmark. */
Graph vgg16();

/** VGG-E (19 layers) on ImageNet. */
Graph vgg19();

/** GoogLeNet/Inception-v1 on ImageNet (branching DAG + concat). */
Graph googlenet();

/** One inception block at toy scale (functional-verification size). */
Graph inceptionToy();

/** ResNet v1 models on ImageNet (Figure 21 benchmarks). */
Graph resnet18();
Graph resnet34();
Graph resnet50();
Graph resnet101();

/** ViT configuration knobs. */
struct VitConfig {
    std::int64_t image = 224;
    std::int64_t patch = 16;
    std::int64_t dim = 768;
    std::int64_t depth = 12;
    std::int64_t heads = 12;
    std::int64_t mlp_dim = 3072;
};

/** Vision transformer (Figure 22 sensitivity benchmark). */
Graph vit(const VitConfig &config);
Graph vitBase();  //!< ViT-B/16
Graph vitSmall(); //!< dim 384, 6 heads
Graph vitTiny();  //!< dim 192, 3 heads

/** Builds a model by canonical name ("resnet18", "vgg16", ...).
 * Unknown names are fatal; prefer byNameChecked on user input. */
Graph byName(const std::string &name);

/** Checked lookup: NotFound for unknown names instead of aborting. */
StatusOr<Graph> byNameChecked(const std::string &name);

/** Names accepted by byName, in a stable order. */
std::vector<std::string> availableModels();

} // namespace cimmlc::models

#endif // CIMMLC_GRAPH_MODELS_H
