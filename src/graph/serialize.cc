#include "graph/serialize.h"

#include <map>

#include "common/strutil.h"

namespace cimmlc {

namespace {

StatusOr<std::vector<std::int64_t>>
dimsFromConfig(const ConfigValue &value, const std::string &what)
{
    if (!value.isArray())
        return parseError(what + " must be an array of dims");
    std::vector<std::int64_t> dims;
    for (const ConfigValue &d : value.asArray()) {
        if (!d.isNumber())
            return parseError(what + " dims must be numbers");
        dims.push_back(d.asInt());
    }
    return dims;
}

/** Maps the serialized op name to an OpKind. */
StatusOr<OpKind>
opKindFromName(const std::string &name)
{
    static const std::map<std::string, OpKind> table = {
        {"conv2d", OpKind::kConv2d},
        {"linear", OpKind::kLinear},
        {"matmul", OpKind::kMatMul},
        {"relu", OpKind::kRelu},
        {"gelu", OpKind::kGelu},
        {"softmax", OpKind::kSoftmax},
        {"layernorm", OpKind::kLayerNorm},
        {"maxpool2d", OpKind::kMaxPool2d},
        {"avgpool2d", OpKind::kAvgPool2d},
        {"globalavgpool", OpKind::kGlobalAvgPool},
        {"add", OpKind::kAdd},
        {"concat", OpKind::kConcat},
        {"flatten", OpKind::kFlatten},
        {"reshape", OpKind::kReshape},
        {"identity", OpKind::kIdentity},
    };
    auto it = table.find(toLower(name));
    if (it == table.end())
        return parseError("unknown op '" + name + "'");
    return it->second;
}

} // namespace

StatusOr<Graph>
graphFromConfig(const ConfigValue &doc)
{
    if (!doc.isObject())
        return parseError("graph document must be an object");
    Graph graph(doc.getStringOr("name", "unnamed"));
    std::map<std::string, TensorId> by_name;

    CIMMLC_ASSIGN_OR_RETURN(ConfigValue inputs, doc.get("inputs"));
    if (!inputs.isArray() || inputs.asArray().empty())
        return parseError("graph needs a non-empty 'inputs' array");
    for (const ConfigValue &input : inputs.asArray()) {
        if (!input.isObject() || !input.has("name") ||
            !input.has("dims")) {
            return parseError("each input needs 'name' and 'dims'");
        }
        const std::string name = input.getStringOr("name", "");
        CIMMLC_ASSIGN_OR_RETURN(
            std::vector<std::int64_t> dims,
            dimsFromConfig(input.get("dims").value(), "input"));
        if (by_name.count(name))
            return parseError("duplicate tensor name '" + name + "'");
        by_name[name] = graph.addInput(name, std::move(dims));
    }

    CIMMLC_ASSIGN_OR_RETURN(ConfigValue nodes, doc.get("nodes"));
    if (!nodes.isArray())
        return parseError("'nodes' must be an array");
    for (const ConfigValue &node : nodes.asArray()) {
        if (!node.isObject() || !node.has("op") || !node.has("inputs"))
            return parseError("each node needs 'op' and 'inputs'");
        CIMMLC_ASSIGN_OR_RETURN(OpKind kind,
                                opKindFromName(node.getStringOr("op",
                                                                "")));
        CIMMLC_ASSIGN_OR_RETURN(ConfigValue node_inputs,
                                node.get("inputs"));
        if (!node_inputs.isArray())
            return parseError("node 'inputs' must be an array of names");
        std::vector<TensorId> input_ids;
        for (const ConfigValue &ref : node_inputs.asArray()) {
            if (!ref.isString())
                return parseError("node input references must be names");
            auto it = by_name.find(ref.asString());
            if (it == by_name.end()) {
                return parseError("node references unknown tensor '" +
                                  ref.asString() + "'");
            }
            input_ids.push_back(it->second);
        }

        NodeAttrs attrs = std::monostate{};
        switch (kind) {
          case OpKind::kConv2d: {
            Conv2dAttrs a;
            a.out_channels = node.getIntOr("out_channels", 0);
            a.kernel_h = node.getIntOr("kernel", 1);
            a.kernel_w = node.getIntOr("kernel_w", a.kernel_h);
            a.stride = node.getIntOr("stride", 1);
            a.padding = node.getIntOr("padding", 0);
            if (a.out_channels <= 0)
                return parseError("conv2d needs positive out_channels");
            attrs = a;
            break;
          }
          case OpKind::kLinear: {
            LinearAttrs a;
            a.out_features = node.getIntOr("out_features", 0);
            if (a.out_features <= 0)
                return parseError("linear needs positive out_features");
            attrs = a;
            break;
          }
          case OpKind::kMaxPool2d:
          case OpKind::kAvgPool2d: {
            Pool2dAttrs a;
            a.kernel = node.getIntOr("kernel", 2);
            a.stride = node.getIntOr("stride", a.kernel);
            a.padding = node.getIntOr("padding", 0);
            attrs = a;
            break;
          }
          case OpKind::kMatMul: {
            MatMulAttrs a;
            a.heads = node.getIntOr("heads", 1);
            a.transpose_rhs = node.getBoolOr("transpose_rhs", false);
            attrs = a;
            break;
          }
          case OpKind::kReshape: {
            ReshapeAttrs a;
            if (!node.has("dims"))
                return parseError("reshape needs 'dims'");
            CIMMLC_ASSIGN_OR_RETURN(
                a.new_dims,
                dimsFromConfig(node.get("dims").value(), "reshape"));
            attrs = a;
            break;
          }
          default:
            break;
        }

        const std::string name =
            node.getStringOr("name", strformat("%s_%zu",
                                               node.getStringOr("op", "")
                                                   .c_str(),
                                               by_name.size()));
        if (by_name.count(name))
            return parseError("duplicate tensor name '" + name + "'");
        by_name[name] =
            graph.addNode(kind, std::move(attrs), input_ids, name);
    }

    CIMMLC_ASSIGN_OR_RETURN(ConfigValue outputs, doc.get("outputs"));
    if (!outputs.isArray() || outputs.asArray().empty())
        return parseError("graph needs a non-empty 'outputs' array");
    for (const ConfigValue &ref : outputs.asArray()) {
        if (!ref.isString())
            return parseError("output references must be names");
        auto it = by_name.find(ref.asString());
        if (it == by_name.end()) {
            return parseError("output references unknown tensor '" +
                              ref.asString() + "'");
        }
        graph.markOutput(it->second);
    }

    CIMMLC_RETURN_IF_ERROR(graph.validate());
    return graph;
}

StatusOr<Graph>
graphFromText(const std::string &text)
{
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue doc, parseConfig(text));
    return graphFromConfig(doc);
}

StatusOr<Graph>
graphFromFile(const std::string &path)
{
    CIMMLC_ASSIGN_OR_RETURN(ConfigValue doc, loadConfigFile(path));
    auto result = graphFromConfig(doc);
    if (!result.isOk())
        return result.status().withContext(path);
    return result;
}

ConfigValue
graphToConfig(const Graph &graph)
{
    ConfigValue::Object doc;
    doc["name"] = ConfigValue::makeString(graph.name());

    ConfigValue::Array inputs;
    for (TensorId in : graph.inputs()) {
        const ValueInfo &info = graph.tensor(in);
        ConfigValue::Object entry;
        entry["name"] = ConfigValue::makeString(info.name);
        ConfigValue::Array dims;
        for (std::int64_t d : info.dims)
            dims.push_back(ConfigValue::makeNumber(
                static_cast<double>(d)));
        entry["dims"] = ConfigValue::makeArray(std::move(dims));
        inputs.push_back(ConfigValue::makeObject(std::move(entry)));
    }
    doc["inputs"] = ConfigValue::makeArray(std::move(inputs));

    ConfigValue::Array nodes;
    for (NodeId id : graph.topoOrder()) {
        const Node &node = graph.node(id);
        if (node.kind == OpKind::kInput)
            continue;
        ConfigValue::Object entry;
        entry["op"] = ConfigValue::makeString(opKindName(node.kind));
        entry["name"] = ConfigValue::makeString(node.name);
        ConfigValue::Array node_inputs;
        for (TensorId in : node.inputs) {
            // Reference the producing node's name (graph inputs share
            // their tensor's name), matching the deserializer's keys.
            const ValueInfo &info = graph.tensor(in);
            const std::string &ref =
                info.producer >= 0 ? graph.node(info.producer).name
                                   : info.name;
            node_inputs.push_back(ConfigValue::makeString(ref));
        }
        entry["inputs"] = ConfigValue::makeArray(std::move(node_inputs));
        switch (node.kind) {
          case OpKind::kConv2d: {
            const auto &a = node.conv();
            entry["out_channels"] = ConfigValue::makeNumber(
                static_cast<double>(a.out_channels));
            entry["kernel"] = ConfigValue::makeNumber(
                static_cast<double>(a.kernel_h));
            entry["kernel_w"] = ConfigValue::makeNumber(
                static_cast<double>(a.kernel_w));
            entry["stride"] = ConfigValue::makeNumber(
                static_cast<double>(a.stride));
            entry["padding"] = ConfigValue::makeNumber(
                static_cast<double>(a.padding));
            break;
          }
          case OpKind::kLinear:
            entry["out_features"] = ConfigValue::makeNumber(
                static_cast<double>(node.linear().out_features));
            break;
          case OpKind::kMaxPool2d:
          case OpKind::kAvgPool2d: {
            const auto &a = node.pool();
            entry["kernel"] = ConfigValue::makeNumber(
                static_cast<double>(a.kernel));
            entry["stride"] = ConfigValue::makeNumber(
                static_cast<double>(a.stride));
            entry["padding"] = ConfigValue::makeNumber(
                static_cast<double>(a.padding));
            break;
          }
          case OpKind::kMatMul: {
            const auto &a = node.matmul();
            entry["heads"] = ConfigValue::makeNumber(
                static_cast<double>(a.heads));
            entry["transpose_rhs"] =
                ConfigValue::makeBool(a.transpose_rhs);
            break;
          }
          case OpKind::kReshape: {
            ConfigValue::Array dims;
            for (std::int64_t d : node.reshape().new_dims)
                dims.push_back(ConfigValue::makeNumber(
                    static_cast<double>(d)));
            entry["dims"] = ConfigValue::makeArray(std::move(dims));
            break;
          }
          default:
            break;
        }
        nodes.push_back(ConfigValue::makeObject(std::move(entry)));
    }
    doc["nodes"] = ConfigValue::makeArray(std::move(nodes));

    ConfigValue::Array outputs;
    for (TensorId out : graph.outputs()) {
        const ValueInfo &info = graph.tensor(out);
        const std::string &ref =
            info.producer >= 0 ? graph.node(info.producer).name
                               : info.name;
        outputs.push_back(ConfigValue::makeString(ref));
    }
    doc["outputs"] = ConfigValue::makeArray(std::move(outputs));
    return ConfigValue::makeObject(std::move(doc));
}

} // namespace cimmlc
