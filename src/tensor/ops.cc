#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/mathutil.h"

namespace cimmlc::ops {

Int8Tensor
im2col(const Int8Tensor &input, std::int64_t kernel_h,
       std::int64_t kernel_w, std::int64_t stride, std::int64_t padding)
{
    const TensorShape &in = input.shape();
    CIMMLC_CHECK_EQ(in.rank(), 4) << "im2col input must be NCHW";
    const std::int64_t N = in.dim(0), C = in.dim(1);
    const std::int64_t H = in.dim(2), W = in.dim(3);
    const std::int64_t out_h = convOutDim(H, kernel_h, stride, padding);
    const std::int64_t out_w = convOutDim(W, kernel_w, stride, padding);
    const std::int64_t rows = N * out_h * out_w;
    const std::int64_t cols = C * kernel_h * kernel_w;

    Int8Tensor out(TensorShape({rows, cols}));
    std::int64_t row = 0;
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
            for (std::int64_t ow = 0; ow < out_w; ++ow, ++row) {
                std::int64_t col = 0;
                for (std::int64_t c = 0; c < C; ++c) {
                    for (std::int64_t kh = 0; kh < kernel_h; ++kh) {
                        for (std::int64_t kw = 0; kw < kernel_w;
                             ++kw, ++col) {
                            const std::int64_t ih =
                                oh * stride + kh - padding;
                            const std::int64_t iw =
                                ow * stride + kw - padding;
                            std::int8_t v = 0;
                            if (ih >= 0 && ih < H && iw >= 0 && iw < W)
                                v = input.at4(n, c, ih, iw);
                            out.at2(row, col) = v;
                        }
                    }
                }
            }
        }
    }
    return out;
}

Int32Tensor
conv2d(const Int8Tensor &input, const Int8Tensor &weight,
       std::int64_t stride, std::int64_t padding)
{
    const TensorShape out_shape =
        conv2dOutputShape(input.shape(), weight.shape(), stride, padding);
    const std::int64_t N = input.shape().dim(0);
    const std::int64_t C = input.shape().dim(1);
    const std::int64_t H = input.shape().dim(2);
    const std::int64_t W = input.shape().dim(3);
    const std::int64_t O = weight.shape().dim(0);
    const std::int64_t KH = weight.shape().dim(2);
    const std::int64_t KW = weight.shape().dim(3);
    const std::int64_t out_h = out_shape.dim(2);
    const std::int64_t out_w = out_shape.dim(3);

    Int32Tensor out(out_shape);
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t o = 0; o < O; ++o) {
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                for (std::int64_t ow = 0; ow < out_w; ++ow) {
                    std::int32_t acc = 0;
                    for (std::int64_t c = 0; c < C; ++c) {
                        for (std::int64_t kh = 0; kh < KH; ++kh) {
                            for (std::int64_t kw = 0; kw < KW; ++kw) {
                                const std::int64_t ih =
                                    oh * stride + kh - padding;
                                const std::int64_t iw =
                                    ow * stride + kw - padding;
                                if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                    continue;
                                acc += static_cast<std::int32_t>(
                                           input.at4(n, c, ih, iw)) *
                                       static_cast<std::int32_t>(
                                           weight.at4(o, c, kh, kw));
                            }
                        }
                    }
                    out.at4(n, o, oh, ow) = acc;
                }
            }
        }
    }
    return out;
}

Int32Tensor
conv2dIm2col(const Int8Tensor &input, const Int8Tensor &weight,
             std::int64_t stride, std::int64_t padding)
{
    const TensorShape out_shape =
        conv2dOutputShape(input.shape(), weight.shape(), stride, padding);
    const std::int64_t O = weight.shape().dim(0);
    const std::int64_t K = weight.shape().dim(1) * weight.shape().dim(2) *
                           weight.shape().dim(3);

    const Int8Tensor patches = im2col(input, weight.shape().dim(2),
                                      weight.shape().dim(3), stride,
                                      padding);
    // Reshape weight OIHW -> [K, O] column-major per output channel so the
    // product is patches [rows, K] x weight [K, O].
    Int8Tensor wmat(TensorShape({K, O}));
    for (std::int64_t o = 0; o < O; ++o) {
        for (std::int64_t k = 0; k < K; ++k)
            wmat.at2(k, o) = weight[o * K + k];
    }
    Int32Tensor prod = matmul(patches, wmat);

    // Back to NCHW.
    Int32Tensor out(out_shape);
    const std::int64_t N = out_shape.dim(0);
    const std::int64_t out_h = out_shape.dim(2);
    const std::int64_t out_w = out_shape.dim(3);
    std::int64_t row = 0;
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t oh = 0; oh < out_h; ++oh) {
            for (std::int64_t ow = 0; ow < out_w; ++ow, ++row) {
                for (std::int64_t o = 0; o < O; ++o)
                    out.at4(n, o, oh, ow) = prod.at2(row, o);
            }
        }
    }
    return out;
}

Int32Tensor
linear(const Int8Tensor &input, const Int8Tensor &weight)
{
    CIMMLC_CHECK_EQ(input.shape().rank(), 2) << "linear input must be 2-d";
    CIMMLC_CHECK_EQ(weight.shape().rank(), 2)
        << "linear weight must be 2-d";
    CIMMLC_CHECK_EQ(input.shape().dim(1), weight.shape().dim(1))
        << "linear in_features mismatch";
    const std::int64_t N = input.shape().dim(0);
    const std::int64_t F = input.shape().dim(1);
    const std::int64_t O = weight.shape().dim(0);

    Int32Tensor out(TensorShape({N, O}));
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t o = 0; o < O; ++o) {
            std::int32_t acc = 0;
            for (std::int64_t f = 0; f < F; ++f) {
                acc += static_cast<std::int32_t>(input.at2(n, f)) *
                       static_cast<std::int32_t>(weight.at2(o, f));
            }
            out.at2(n, o) = acc;
        }
    }
    return out;
}

Int32Tensor
matmul(const Int8Tensor &a, const Int8Tensor &b)
{
    CIMMLC_CHECK_EQ(a.shape().rank(), 2) << "matmul lhs must be 2-d";
    CIMMLC_CHECK_EQ(b.shape().rank(), 2) << "matmul rhs must be 2-d";
    CIMMLC_CHECK_EQ(a.shape().dim(1), b.shape().dim(0))
        << "matmul inner dim mismatch";
    const std::int64_t M = a.shape().dim(0);
    const std::int64_t K = a.shape().dim(1);
    const std::int64_t N = b.shape().dim(1);

    Int32Tensor out(TensorShape({M, N}));
    for (std::int64_t m = 0; m < M; ++m) {
        for (std::int64_t k = 0; k < K; ++k) {
            const std::int32_t av = a.at2(m, k);
            if (av == 0)
                continue;
            for (std::int64_t n = 0; n < N; ++n)
                out.at2(m, n) += av * static_cast<std::int32_t>(b.at2(k, n));
        }
    }
    return out;
}

void
addBiasNchw(Int32Tensor *acc, const Int32Tensor &bias)
{
    CIMMLC_CHECK_EQ(acc->shape().rank(), 4);
    CIMMLC_CHECK_EQ(bias.shape().rank(), 1);
    CIMMLC_CHECK_EQ(acc->shape().dim(1), bias.shape().dim(0));
    const std::int64_t N = acc->shape().dim(0);
    const std::int64_t C = acc->shape().dim(1);
    const std::int64_t HW = acc->shape().dim(2) * acc->shape().dim(3);
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < C; ++c) {
            const std::int32_t b = bias[c];
            for (std::int64_t i = 0; i < HW; ++i)
                (*acc)[(n * C + c) * HW + i] += b;
        }
    }
}

Int32Tensor
relu(const Int32Tensor &input)
{
    Int32Tensor out = input;
    for (std::int32_t &v : out.data())
        v = std::max(v, 0);
    return out;
}

Int8Tensor
relu(const Int8Tensor &input)
{
    Int8Tensor out = input;
    for (std::int8_t &v : out.data())
        v = std::max<std::int8_t>(v, 0);
    return out;
}

Int32Tensor
add(const Int32Tensor &a, const Int32Tensor &b)
{
    CIMMLC_CHECK(a.shape() == b.shape()) << "add shape mismatch";
    Int32Tensor out = a;
    for (std::int64_t i = 0; i < out.numel(); ++i)
        out[i] += b[i];
    return out;
}

Int8Tensor
addSaturating(const Int8Tensor &a, const Int8Tensor &b)
{
    CIMMLC_CHECK(a.shape() == b.shape()) << "add shape mismatch";
    Int8Tensor out = a;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const int sum = static_cast<int>(out[i]) + static_cast<int>(b[i]);
        out[i] = static_cast<std::int8_t>(clampInt(sum, -128, 127));
    }
    return out;
}

Int8Tensor
maxPool2d(const Int8Tensor &input, std::int64_t kernel, std::int64_t stride,
          std::int64_t padding)
{
    const TensorShape out_shape =
        pool2dOutputShape(input.shape(), kernel, stride, padding);
    const std::int64_t N = input.shape().dim(0);
    const std::int64_t C = input.shape().dim(1);
    const std::int64_t H = input.shape().dim(2);
    const std::int64_t W = input.shape().dim(3);

    Int8Tensor out(out_shape);
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < C; ++c) {
            for (std::int64_t oh = 0; oh < out_shape.dim(2); ++oh) {
                for (std::int64_t ow = 0; ow < out_shape.dim(3); ++ow) {
                    std::int8_t best = -128;
                    for (std::int64_t kh = 0; kh < kernel; ++kh) {
                        for (std::int64_t kw = 0; kw < kernel; ++kw) {
                            const std::int64_t ih =
                                oh * stride + kh - padding;
                            const std::int64_t iw =
                                ow * stride + kw - padding;
                            if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                continue;
                            best = std::max(best, input.at4(n, c, ih, iw));
                        }
                    }
                    out.at4(n, c, oh, ow) = best;
                }
            }
        }
    }
    return out;
}

Int8Tensor
avgPool2d(const Int8Tensor &input, std::int64_t kernel, std::int64_t stride,
          std::int64_t padding)
{
    const TensorShape out_shape =
        pool2dOutputShape(input.shape(), kernel, stride, padding);
    const std::int64_t N = input.shape().dim(0);
    const std::int64_t C = input.shape().dim(1);
    const std::int64_t H = input.shape().dim(2);
    const std::int64_t W = input.shape().dim(3);
    const std::int64_t window = kernel * kernel;

    Int8Tensor out(out_shape);
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < C; ++c) {
            for (std::int64_t oh = 0; oh < out_shape.dim(2); ++oh) {
                for (std::int64_t ow = 0; ow < out_shape.dim(3); ++ow) {
                    std::int32_t acc = 0;
                    for (std::int64_t kh = 0; kh < kernel; ++kh) {
                        for (std::int64_t kw = 0; kw < kernel; ++kw) {
                            const std::int64_t ih =
                                oh * stride + kh - padding;
                            const std::int64_t iw =
                                ow * stride + kw - padding;
                            if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                continue;
                            acc += input.at4(n, c, ih, iw);
                        }
                    }
                    // Round half away from zero, always dividing by the
                    // full window (padding counts as zero), matching the
                    // count_include_pad=True convention.
                    const std::int32_t rounded =
                        acc >= 0 ? (acc + window / 2)
                                 : (acc - window / 2);
                    out.at4(n, c, oh, ow) = static_cast<std::int8_t>(
                        clampInt(rounded / window, -128, 127));
                }
            }
        }
    }
    return out;
}

Int8Tensor
globalAvgPool(const Int8Tensor &input)
{
    const std::int64_t N = input.shape().dim(0);
    const std::int64_t C = input.shape().dim(1);
    const std::int64_t HW = input.shape().dim(2) * input.shape().dim(3);

    Int8Tensor out(TensorShape({N, C, 1, 1}));
    for (std::int64_t n = 0; n < N; ++n) {
        for (std::int64_t c = 0; c < C; ++c) {
            std::int32_t acc = 0;
            for (std::int64_t i = 0; i < HW; ++i)
                acc += input[(n * C + c) * HW + i];
            const std::int32_t rounded =
                acc >= 0 ? (acc + HW / 2) : (acc - HW / 2);
            out.at4(n, c, 0, 0) = static_cast<std::int8_t>(
                clampInt(rounded / HW, -128, 127));
        }
    }
    return out;
}

FloatTensor
softmax(const FloatTensor &input)
{
    const int rank = input.shape().rank();
    CIMMLC_CHECK_GE(rank, 1);
    const std::int64_t cols = input.shape().dim(rank - 1);
    const std::int64_t rows = input.numel() / cols;

    FloatTensor out = input;
    for (std::int64_t r = 0; r < rows; ++r) {
        float *row = out.data().data() + r * cols;
        float max_v = row[0];
        for (std::int64_t c = 1; c < cols; ++c)
            max_v = std::max(max_v, row[c]);
        float sum = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            row[c] = std::exp(row[c] - max_v);
            sum += row[c];
        }
        for (std::int64_t c = 0; c < cols; ++c)
            row[c] /= sum;
    }
    return out;
}

FloatTensor
layerNorm(const FloatTensor &input)
{
    const int rank = input.shape().rank();
    CIMMLC_CHECK_GE(rank, 1);
    const std::int64_t cols = input.shape().dim(rank - 1);
    const std::int64_t rows = input.numel() / cols;
    constexpr float eps = 1e-5f;

    FloatTensor out = input;
    for (std::int64_t r = 0; r < rows; ++r) {
        float *row = out.data().data() + r * cols;
        float mean = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c)
            mean += row[c];
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            const float d = row[c] - mean;
            var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv = 1.0f / std::sqrt(var + eps);
        for (std::int64_t c = 0; c < cols; ++c)
            row[c] = (row[c] - mean) * inv;
    }
    return out;
}

FloatTensor
gelu(const FloatTensor &input)
{
    FloatTensor out = input;
    constexpr float k = 0.7978845608f; // sqrt(2/pi)
    for (float &v : out.data()) {
        const float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
    return out;
}

} // namespace cimmlc::ops
