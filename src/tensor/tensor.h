/**
 * @file
 * Dense tensor container used by the reference operators (the "PyTorch"
 * oracle of the paper's functional verification) and by the functional
 * simulator.
 */
#ifndef CIMMLC_TENSOR_TENSOR_H
#define CIMMLC_TENSOR_TENSOR_H

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace cimmlc {

/**
 * Row-major dense tensor over element type T.
 *
 * Value semantics: copies are deep. The accessor family mirrors the NCHW
 * layout convention; flat indexing is available for kernels that have
 * already linearized their loops.
 */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    explicit Tensor(TensorShape shape)
        : shape_(std::move(shape)),
          data_(static_cast<std::size_t>(shape_.numel()), T{})
    {
        CIMMLC_CHECK(shape_.isValid())
            << "invalid tensor shape " << shape_.toString();
    }

    Tensor(TensorShape shape, std::vector<T> data)
        : shape_(std::move(shape)), data_(std::move(data))
    {
        CIMMLC_CHECK_EQ(static_cast<std::int64_t>(data_.size()),
                        shape_.numel())
            << "data size does not match shape " << shape_.toString();
    }

    const TensorShape &shape() const { return shape_; }
    std::int64_t numel() const { return shape_.numel(); }
    const std::vector<T> &data() const { return data_; }
    std::vector<T> &data() { return data_; }

    T operator[](std::int64_t flat) const
    {
        return data_[static_cast<std::size_t>(flat)];
    }
    T &operator[](std::int64_t flat)
    {
        return data_[static_cast<std::size_t>(flat)];
    }

    /** 2-d accessor for [rows, cols] tensors. */
    T
    at2(std::int64_t r, std::int64_t c) const
    {
        return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
    }
    T &
    at2(std::int64_t r, std::int64_t c)
    {
        return data_[static_cast<std::size_t>(r * shape_.dim(1) + c)];
    }

    /** 4-d accessor for NCHW / OIHW tensors. */
    T
    at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const
    {
        return data_[flatIndex4(n, c, h, w)];
    }
    T &
    at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w)
    {
        return data_[flatIndex4(n, c, h, w)];
    }

    /** Fills every element with @p value. */
    void
    fill(T value)
    {
        for (T &v : data_)
            v = value;
    }

    /** Fills with deterministic pseudo-random values in [lo, hi]. */
    void
    fillRandom(Rng &rng, std::int64_t lo, std::int64_t hi)
    {
        for (T &v : data_)
            v = static_cast<T>(rng.uniformInt(lo, hi));
    }

    bool
    operator==(const Tensor &other) const
    {
        return shape_ == other.shape_ && data_ == other.data_;
    }

  private:
    std::size_t
    flatIndex4(std::int64_t n, std::int64_t c, std::int64_t h,
               std::int64_t w) const
    {
        const std::int64_t C = shape_.dim(1);
        const std::int64_t H = shape_.dim(2);
        const std::int64_t W = shape_.dim(3);
        return static_cast<std::size_t>(((n * C + c) * H + h) * W + w);
    }

    TensorShape shape_;
    std::vector<T> data_;
};

using Int8Tensor = Tensor<std::int8_t>;
using Int32Tensor = Tensor<std::int32_t>;
using FloatTensor = Tensor<float>;

} // namespace cimmlc

#endif // CIMMLC_TENSOR_TENSOR_H
