#include "tensor/quantize.h"

#include <cmath>

#include "common/mathutil.h"

namespace cimmlc {

std::int32_t
shiftRound(std::int32_t value, int shift)
{
    if (shift <= 0)
        return value;
    const std::int32_t bias = 1 << (shift - 1);
    if (value >= 0)
        return (value + bias) >> shift;
    return -((-value + bias) >> shift);
}

Int8Tensor
requantize(const Int32Tensor &acc, const RequantParams &params)
{
    Int8Tensor out(acc.shape());
    for (std::int64_t i = 0; i < acc.numel(); ++i) {
        const std::int32_t scaled = shiftRound(acc[i], params.shift);
        out[i] = static_cast<std::int8_t>(clampInt(scaled, -128, 127));
    }
    return out;
}

RequantParams
chooseRequantShift(const Int32Tensor &acc)
{
    std::int64_t max_abs = 0;
    for (std::int64_t i = 0; i < acc.numel(); ++i) {
        const std::int64_t v = std::abs(
            static_cast<std::int64_t>(acc[i]));
        max_abs = std::max(max_abs, v);
    }
    RequantParams params;
    params.shift = 0;
    while ((max_abs >> params.shift) > 127)
        ++params.shift;
    return params;
}

Int8Tensor
quantizeFloat(const FloatTensor &input, float scale)
{
    Int8Tensor out(input.shape());
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        const std::int64_t q =
            static_cast<std::int64_t>(std::lround(input[i] / scale));
        out[i] = static_cast<std::int8_t>(clampInt(q, -128, 127));
    }
    return out;
}

FloatTensor
dequantize(const Int8Tensor &input, float scale)
{
    FloatTensor out(input.shape());
    for (std::int64_t i = 0; i < input.numel(); ++i)
        out[i] = static_cast<float>(input[i]) * scale;
    return out;
}

} // namespace cimmlc
