/**
 * @file
 * Tensor shape type shared by the tensor substrate and the graph IR.
 */
#ifndef CIMMLC_TENSOR_SHAPE_H
#define CIMMLC_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cimmlc {

/**
 * Dense tensor shape. Layout conventions across the stack:
 *  - activations: NCHW
 *  - convolution weights: OIHW
 *  - linear weights: [out_features, in_features]
 */
class TensorShape
{
  public:
    TensorShape() = default;
    TensorShape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
    explicit TensorShape(std::vector<std::int64_t> dims)
        : dims_(std::move(dims))
    {
    }

    int rank() const { return static_cast<int>(dims_.size()); }
    std::int64_t dim(int i) const;
    const std::vector<std::int64_t> &dims() const { return dims_; }

    /** Total element count; 1 for rank-0. */
    std::int64_t numel() const;

    /** True when every dimension is positive. */
    bool isValid() const;

    /** Renders like "[1, 3, 32, 32]". */
    std::string toString() const;

    bool operator==(const TensorShape &other) const
    {
        return dims_ == other.dims_;
    }
    bool operator!=(const TensorShape &other) const
    {
        return !(*this == other);
    }

  private:
    std::vector<std::int64_t> dims_;
};

/** Output spatial size of a convolution/pool window sweep. */
std::int64_t convOutDim(std::int64_t in, std::int64_t kernel,
                        std::int64_t stride, std::int64_t padding);

/** Output shape of conv2d over NCHW input with OIHW weight. */
TensorShape conv2dOutputShape(const TensorShape &input,
                              const TensorShape &weight,
                              std::int64_t stride, std::int64_t padding);

/** Output shape of 2-d pooling over NCHW input. */
TensorShape pool2dOutputShape(const TensorShape &input, std::int64_t kernel,
                              std::int64_t stride, std::int64_t padding);

} // namespace cimmlc

#endif // CIMMLC_TENSOR_SHAPE_H
