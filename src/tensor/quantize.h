/**
 * @file
 * Symmetric 8-bit quantization helpers.
 *
 * The paper quantizes all weights and activations to 8 bits (Section 4.1).
 * Between CIM-mapped layers the int32 accumulators are requantized back to
 * int8. We use power-of-two scaling (arithmetic right shift with
 * round-half-away-from-zero) so the functional simulator and the reference
 * oracle agree bit-exactly without floating-point rounding concerns.
 */
#ifndef CIMMLC_TENSOR_QUANTIZE_H
#define CIMMLC_TENSOR_QUANTIZE_H

#include <cstdint>

#include "tensor/tensor.h"

namespace cimmlc {

// The defaulted operator== below requires C++20 (see also graph/node.h);
// CMake enforces cxx_std_20 project-wide.
static_assert(__cplusplus >= 202002L,
              "cimmlc requires C++20 (defaulted operator==)");

/** Requantization parameters: out = clamp((acc + round) >> shift). */
struct RequantParams {
    int shift = 8; //!< right-shift amount; 0 disables scaling

    bool operator==(const RequantParams &other) const = default;
};

/** Right-shift with round-half-away-from-zero semantics. */
std::int32_t shiftRound(std::int32_t value, int shift);

/** Requantizes an int32 accumulator tensor to int8. */
Int8Tensor requantize(const Int32Tensor &acc, const RequantParams &params);

/** Picks a shift so the max |acc| lands inside int8 after shifting. */
RequantParams chooseRequantShift(const Int32Tensor &acc);

/** Float -> int8 with symmetric scale (for ViT float segments). */
Int8Tensor quantizeFloat(const FloatTensor &input, float scale);

/** int8 -> float with symmetric scale. */
FloatTensor dequantize(const Int8Tensor &input, float scale);

} // namespace cimmlc

#endif // CIMMLC_TENSOR_QUANTIZE_H
