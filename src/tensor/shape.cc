#include "tensor/shape.h"

#include "common/logging.h"
#include "common/strutil.h"

namespace cimmlc {

std::int64_t
TensorShape::dim(int i) const
{
    CIMMLC_CHECK(i >= 0 && i < rank())
        << "dim index " << i << " out of range for rank " << rank();
    return dims_[static_cast<std::size_t>(i)];
}

std::int64_t
TensorShape::numel() const
{
    std::int64_t total = 1;
    for (std::int64_t d : dims_)
        total *= d;
    return total;
}

bool
TensorShape::isValid() const
{
    for (std::int64_t d : dims_) {
        if (d <= 0)
            return false;
    }
    return true;
}

std::string
TensorShape::toString() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
}

std::int64_t
convOutDim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
           std::int64_t padding)
{
    return (in + 2 * padding - kernel) / stride + 1;
}

TensorShape
conv2dOutputShape(const TensorShape &input, const TensorShape &weight,
                  std::int64_t stride, std::int64_t padding)
{
    CIMMLC_CHECK_EQ(input.rank(), 4) << "conv2d input must be NCHW";
    CIMMLC_CHECK_EQ(weight.rank(), 4) << "conv2d weight must be OIHW";
    CIMMLC_CHECK_EQ(input.dim(1), weight.dim(1))
        << "channel mismatch: input " << input.toString() << " weight "
        << weight.toString();
    return TensorShape({input.dim(0), weight.dim(0),
                        convOutDim(input.dim(2), weight.dim(2), stride,
                                   padding),
                        convOutDim(input.dim(3), weight.dim(3), stride,
                                   padding)});
}

TensorShape
pool2dOutputShape(const TensorShape &input, std::int64_t kernel,
                  std::int64_t stride, std::int64_t padding)
{
    CIMMLC_CHECK_EQ(input.rank(), 4) << "pool2d input must be NCHW";
    return TensorShape({input.dim(0), input.dim(1),
                        convOutDim(input.dim(2), kernel, stride, padding),
                        convOutDim(input.dim(3), kernel, stride, padding)});
}

} // namespace cimmlc
