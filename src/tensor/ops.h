/**
 * @file
 * Reference operator implementations over quantized tensors.
 *
 * These are the oracle the functional simulator is verified against
 * (the role PyTorch plays in the paper, Section 4.1). All CIM-mapped
 * operators use exact int32 accumulation over int8 operands so the
 * crossbar simulation can be compared bit-for-bit. Digital operators
 * that run on the tier ALUs (softmax, layernorm, gelu) are float and
 * are shared verbatim by the simulator, keeping equality exact there
 * too.
 */
#ifndef CIMMLC_TENSOR_OPS_H
#define CIMMLC_TENSOR_OPS_H

#include <cstdint>

#include "tensor/tensor.h"

namespace cimmlc::ops {

/**
 * im2col expansion: one row per output spatial position, one column per
 * (input channel, kh, kw) weight element. Zero padding is materialized.
 * Output shape: [N * outH * outW, C * kh * kw].
 */
Int8Tensor im2col(const Int8Tensor &input, std::int64_t kernel_h,
                  std::int64_t kernel_w, std::int64_t stride,
                  std::int64_t padding);

/** conv2d, NCHW x OIHW -> NCHW int32 accumulators. */
Int32Tensor conv2d(const Int8Tensor &input, const Int8Tensor &weight,
                   std::int64_t stride, std::int64_t padding);

/** conv2d via explicit im2col + matmul; must equal conv2d(). */
Int32Tensor conv2dIm2col(const Int8Tensor &input, const Int8Tensor &weight,
                         std::int64_t stride, std::int64_t padding);

/** linear layer: [N, F] x [O, F]^T -> [N, O] int32. */
Int32Tensor linear(const Int8Tensor &input, const Int8Tensor &weight);

/** matmul: [M, K] x [K, N] -> [M, N] int32. */
Int32Tensor matmul(const Int8Tensor &a, const Int8Tensor &b);

/** Adds per-channel bias to a conv output (NCHW). */
void addBiasNchw(Int32Tensor *acc, const Int32Tensor &bias);

/** Elementwise max(v, 0). */
Int32Tensor relu(const Int32Tensor &input);
Int8Tensor relu(const Int8Tensor &input);

/** Elementwise sum; shapes must match. */
Int32Tensor add(const Int32Tensor &a, const Int32Tensor &b);
Int8Tensor addSaturating(const Int8Tensor &a, const Int8Tensor &b);

/** 2-d max pooling over NCHW int8. */
Int8Tensor maxPool2d(const Int8Tensor &input, std::int64_t kernel,
                     std::int64_t stride, std::int64_t padding);

/** 2-d average pooling (accumulate int32, round-half-up divide). */
Int8Tensor avgPool2d(const Int8Tensor &input, std::int64_t kernel,
                     std::int64_t stride, std::int64_t padding);

/** Global average pool to [N, C, 1, 1]. */
Int8Tensor globalAvgPool(const Int8Tensor &input);

/** Float digital ops shared with the simulator's ALU model. */
FloatTensor softmax(const FloatTensor &input);     //!< over last dim
FloatTensor layerNorm(const FloatTensor &input);   //!< over last dim
FloatTensor gelu(const FloatTensor &input);        //!< tanh approximation

} // namespace cimmlc::ops

#endif // CIMMLC_TENSOR_OPS_H
