/**
 * @file
 * Ablation: the Figure 7 dimension-binding design choice.
 *
 * The default binding spreads a weight's bit slices across adjacent
 * columns of one array (B->XBC); the alternative dedicates one crossbar
 * per bit plane (B->XB). Bit planes widen the logical columns per array
 * (fewer horizontal tiles) but multiply the physical arrays per VXB —
 * DESIGN.md calls this trade-off out as a scheduler-visible choice, and
 * this bench quantifies it across the benchmark networks on the Table 3
 * baseline.
 */
#include <cstdio>

#include "arch/presets.h"
#include "bench_util.h"
#include "common/strutil.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;

int
main()
{
    std::puts("=== Ablation: dimension binding (B->XBC vs B->XB) ===");
    const CimArchitecture arch = presets::isaacBaseline();
    ShapeChecker check;

    TextTable table({"network", "binding", "crossbars mapped",
                     "latency (cycles)", "vs default"});
    for (const char *net :
         {"lenet5", "resnet18", "resnet50", "vit_tiny"}) {
        const Graph graph = models::byName(net);
        double default_latency = 0.0;
        for (bool bit_planes : {false, true}) {
            ScheduleOptions options = ScheduleOptions::full();
            options.binding = bit_planes
                                  ? DimensionBinding::bitsToCrossbars()
                                  : DimensionBinding::bitsToColumns();
            auto schedule = scheduleGraph(graph, arch, options);
            if (!schedule.isOk()) {
                std::fprintf(stderr, "%s/%d failed: %s\n", net,
                             bit_planes,
                             schedule.status().toString().c_str());
                return 1;
            }
            std::int64_t xbs = 0;
            for (const OperatorMapping &m : schedule.value().ops)
                xbs += m.totalCrossbars();
            const double latency =
                schedule.value().total_latency_cycles;
            if (!bit_planes)
                default_latency = latency;
            table.addRow(
                {net, bit_planes ? "B->XB (bit planes)" : "B->XBC",
                 std::to_string(xbs), strformat("%.4g", latency),
                 strformat("%.2fx", latency / default_latency)});

            // Structural invariant: bit planes multiply per-VXB arrays
            // by cellsPerWeight for every CIM operator.
            for (const OperatorMapping &m : schedule.value().ops) {
                if (!m.is_cim)
                    continue;
                check.require(
                    m.grid.bit_planes ==
                        (bit_planes ? arch.cellsPerWeight() : 1),
                    std::string(net) + ": bit_planes field matches "
                                       "binding");
            }
        }
        table.addSeparator();
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("(bit planes trade horizontal tiling for array count; on "
              "a 2-bit-cell chip each VXB needs 4 arrays)");
    return check.finish("ablation_binding");
}
