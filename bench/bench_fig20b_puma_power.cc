/**
 * @file
 * Reproduces Figure 20(b): peak-power comparison against PUMA's own
 * compilation on the Figure 18 abstraction (VGG16, XBM mode).
 *
 * Paper: CIM-MLC's CG+MVM scheduling performs fine-grained time-division
 * activation of crossbars and their ADC/DACs, cutting peak power by 75%.
 * The evaluated breakdown attributes ~10% to ADC/DAC, ~83% to crossbar
 * activation, ~7% to data movement.
 */
#include <cstdio>

#include "arch/presets.h"
#include "baselines/vendor.h"
#include "bench_util.h"
#include "common/table.h"
#include "graph/models.h"
#include "perfsim/perf_model.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;

int
main()
{
    std::puts("=== Figure 20(b): peak power vs PUMA [4] (VGG16, XBM) "
              "===");
    const CimArchitecture arch = presets::puma();
    const Graph graph = models::vgg16();

    auto puma = pumaVendorSchedule(graph, arch);
    CIMMLC_CHECK(puma.isOk()) << puma.status().toString();
    auto ours = scheduleGraph(graph, arch, ScheduleOptions::cgMvm());
    CIMMLC_CHECK(ours.isOk()) << ours.status().toString();

    auto puma_perf = evaluateSchedule(graph, arch, puma.value());
    auto ours_perf = evaluateSchedule(graph, arch, ours.value());
    CIMMLC_CHECK(puma_perf.isOk() && ours_perf.isOk());

    const double p0 = puma_perf.value().peak_power_mw;
    const double p1 = ours_perf.value().peak_power_mw;

    TextTable table({"schedule", "peak power (mW)", "normalized",
                     "paper"});
    table.addRow({"PUMA [2,4]", strformat("%.1f", p0), "100%", "100%"});
    table.addRow({"CG+MVM-grained (ours)", strformat("%.1f", p1),
                  bench::percentStr(p1 / p0), "25% (-75%)"});
    std::fputs(table.render().c_str(), stdout);

    // Energy breakdown of our schedule (paper: ADC/DAC 10%, XB 83%,
    // movement 7%).
    const EnergyBreakdown &e = ours_perf.value().energy;
    const double compute_total =
        e.xbar_pj + e.adc_dac_pj + e.movement_pj;
    TextTable breakdown({"component", "share (ours)", "share (paper)"});
    breakdown.addRow({"ADC/DAC",
                      bench::percentStr(e.adc_dac_pj / compute_total),
                      "10%"});
    breakdown.addRow({"XB activation",
                      bench::percentStr(e.xbar_pj / compute_total),
                      "83%"});
    breakdown.addRow({"data movement",
                      bench::percentStr(e.movement_pj / compute_total),
                      "7%"});
    std::puts("\nenergy breakdown (compute-path)");
    std::fputs(breakdown.render().c_str(), stdout);

    ShapeChecker check;
    check.require(p1 < p0, "staggered activation must cut peak power");
    check.requireRatio(p1, p0, 0.08, 0.55,
                       "peak-power reduction in the paper's ~75% band");
    check.requireRatio(e.xbar_pj, compute_total, 0.6, 0.95,
                       "crossbar activation dominates energy");
    check.requireRatio(e.adc_dac_pj, compute_total, 0.03, 0.3,
                       "ADC/DAC share near the paper's 10%");
    check.requireRatio(e.movement_pj, compute_total, 0.005, 0.3,
                       "movement share near the paper's 7%");
    return check.finish("fig20b");
}
