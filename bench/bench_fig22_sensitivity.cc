/**
 * @file
 * Reproduces Figure 22: architecture-parameter sensitivity of the
 * multi-level schedule, ViT benchmark on the Table 3 baseline with a
 * 128x256 crossbar.
 *
 *  (a) core number 256->1024: CG speedup grows ~15x -> ~30x; MVM adds
 *      ~1.1x; VVM adds ~1.2x over CG.
 *  (b) crossbar number 8->20 per core: same growth trend.
 *  (c) crossbar size 64x512 -> 512x64: speedup roughly flat while the
 *      weight matrices fit, then drops at 512 rows (ViT's 768-row
 *      matrices need two vertical tiles).
 *  (d) parallel row 64->8: CG/MVM degrade; VVM remapping recovers ~20%
 *      at parallel_row 8.
 */
#include <cstdio>
#include <vector>

#include "arch/presets.h"
#include "bench_util.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;
using bench::speedupStr;

namespace {

CimArchitecture
vitBaseline()
{
    CimArchitecture arch = presets::isaacBaseline();
    arch.name = "isaac-vit";
    arch.xbar.rows = 128;
    arch.xbar.cols = 256;
    return arch;
}

struct Levels {
    double cg = 0.0;
    double mvm = 0.0;
    double vvm = 0.0;
};

Levels
measure(const Graph &graph, const CimArchitecture &arch)
{
    auto none = scheduleGraph(graph, arch, ScheduleOptions::none());
    auto cg = scheduleGraph(graph, arch, ScheduleOptions::cgOnly());
    auto mvm = scheduleGraph(graph, arch, ScheduleOptions::cgMvm());
    auto vvm = scheduleGraph(graph, arch, ScheduleOptions::full());
    CIMMLC_CHECK(none.isOk() && cg.isOk() && mvm.isOk() && vvm.isOk());
    const double base = none.value().total_latency_cycles;
    Levels out;
    out.cg = base / cg.value().total_latency_cycles;
    out.mvm = base / mvm.value().total_latency_cycles;
    out.vvm = base / vvm.value().total_latency_cycles;
    return out;
}

} // namespace

int
main()
{
    std::puts("=== Figure 22: ViT sensitivity sweeps ===");
    // ViT-Tiny: ViT-Base's 86M parameters fill 660 of the 768 cores,
    // leaving no room for the duplication sweep the paper shows; the
    // tiny variant reproduces the 15-30x CG band (see EXPERIMENTS.md).
    const Graph graph = models::vitTiny();
    ShapeChecker check;

    // ----- (a) core number ------------------------------------------------
    {
        TextTable table({"cores", "CG", "CG+MVM", "CG+MVM+VVM"});
        std::vector<double> cg_curve;
        for (std::int64_t cores : {256, 512, 768, 1024}) {
            CimArchitecture arch = vitBaseline();
            arch.chip.core_rows = 16;
            arch.chip.core_cols = cores / 16;
            const Levels l = measure(graph, arch);
            cg_curve.push_back(l.cg);
            table.addRow({std::to_string(cores), speedupStr(l.cg),
                          speedupStr(l.mvm), speedupStr(l.vvm)});
        }
        std::puts("\n(a) core-number sweep (paper: CG 15x -> 30x)");
        std::fputs(table.render().c_str(), stdout);
        check.require(cg_curve.back() > cg_curve.front(),
                      "(a) speedup grows with core count");
    }

    // ----- (b) crossbar number --------------------------------------------
    {
        TextTable table({"xbs/core", "CG", "CG+MVM", "CG+MVM+VVM"});
        std::vector<double> curve;
        for (std::int64_t xbs : {8, 12, 16, 20}) {
            CimArchitecture arch = vitBaseline();
            arch.core.xb_rows = 1;
            arch.core.xb_cols = xbs;
            const Levels l = measure(graph, arch);
            curve.push_back(l.vvm);
            table.addRow({std::to_string(xbs), speedupStr(l.cg),
                          speedupStr(l.mvm), speedupStr(l.vvm)});
        }
        std::puts("\n(b) crossbar-number sweep (paper: grows like (a))");
        std::fputs(table.render().c_str(), stdout);
        check.require(curve.back() >= curve.front() * 0.95,
                      "(b) speedup non-decreasing with more crossbars");
    }

    // ----- (c) crossbar size ----------------------------------------------
    {
        TextTable table({"xb size", "CG", "CG+MVM", "CG+MVM+VVM"});
        std::vector<double> curve;
        const std::vector<std::pair<std::int64_t, std::int64_t>> sizes =
            {{64, 512}, {128, 256}, {256, 128}, {512, 64}};
        for (const auto &[rows, cols] : sizes) {
            CimArchitecture arch = vitBaseline();
            arch.xbar.rows = rows;
            arch.xbar.cols = cols;
            arch.xbar.parallel_row = std::min<std::int64_t>(
                arch.xbar.parallel_row, rows);
            const Levels l = measure(graph, arch);
            curve.push_back(l.vvm);
            table.addRow({strformat("%lldx%lld",
                                    static_cast<long long>(rows),
                                    static_cast<long long>(cols)),
                          speedupStr(l.cg), speedupStr(l.mvm),
                          speedupStr(l.vvm)});
        }
        std::puts("\n(c) crossbar-size sweep (paper: drop at 512 rows — "
                  "ViT's 768-row matrices split)");
        std::fputs(table.render().c_str(), stdout);
        check.require(curve[3] < curve[2],
                      "(c) 512-row arrays lose to 256-row arrays "
                      "(768-row matrices split badly at 512)");
    }

    // ----- (d) parallel row -----------------------------------------------
    {
        TextTable table({"parallel row", "CG", "CG+MVM", "CG+MVM+VVM",
                         "VVM recovery"});
        double recovery_at_8 = 0.0;
        for (std::int64_t rows : {64, 32, 16, 8}) {
            CimArchitecture arch = vitBaseline();
            arch.xbar.parallel_row = rows;
            const Levels l = measure(graph, arch);
            const double recovery = l.vvm / l.mvm;
            if (rows == 8)
                recovery_at_8 = recovery;
            table.addRow({std::to_string(rows), speedupStr(l.cg),
                          speedupStr(l.mvm), speedupStr(l.vvm),
                          speedupStr(recovery)});
        }
        std::puts("\n(d) parallel-row sweep (paper: VVM recovers ~20% at "
                  "parallel_row 8)");
        std::fputs(table.render().c_str(), stdout);
        check.require(recovery_at_8 > 1.02,
                      "(d) VVM remap must recover latency when "
                      "parallel_row shrinks to 8");
    }

    return check.finish("fig22");
}
