/**
 * @file
 * Closed-form vs discrete-event engine comparison: wall-clock cost of
 * each engine and the modeled-latency delta across model x preset
 * pairs. Motivates the two-rung fidelity ladder — the closed-form
 * model is orders of magnitude cheaper to run, the event engine prices
 * real contention (nonzero stall on port-limited presets) and can only
 * ever be slower than the contention-blind estimate.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/presets.h"
#include "bench_util.h"
#include "common/table.h"
#include "compiler/session.h"
#include "common/strutil.h"

using namespace cimmlc;
using bench::ShapeChecker;

namespace {

struct EngineSample {
    double wall_ms = 0.0;
    double latency = 0.0;
    double stall = 0.0;
};

EngineSample
runEngine(const std::string &model, const std::string &arch,
          PerfEngineKind engine)
{
    CompileRequest request;
    request.model = model;
    request.arch = arch;
    request.perf_engine = engine;
    request.stop_after = CompileStage::kPerf;
    CompilerSession session(std::move(request));
    const auto start = std::chrono::steady_clock::now();
    auto artifacts = session.run();
    const auto stop = std::chrono::steady_clock::now();
    CIMMLC_CHECK(artifacts.isOk()) << artifacts.status().toString();
    CIMMLC_CHECK(artifacts.value().perf.has_value());
    EngineSample sample;
    sample.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    sample.latency = artifacts.value().perf->latency_cycles;
    sample.stall = artifacts.value().perf->stall_cycles;
    return sample;
}

} // namespace

int
main()
{
    std::puts("=== Perf engines: closed-form proxy vs discrete-event "
              "simulation ===");
    const std::vector<std::string> model_names = {"mlp", "lenet5",
                                                  "macro_cnn"};
    const std::vector<std::string> arch_names = {"jia", "jain",
                                                 "tutorial"};

    TextTable table({"model", "arch", "closed ms", "event ms",
                     "closed cycles", "event cycles", "delta",
                     "stall cycles"});
    ShapeChecker check;
    double closed_ms_total = 0.0;
    double event_ms_total = 0.0;
    bool saw_stall = false;
    for (const std::string &model : model_names) {
        for (const std::string &arch : arch_names) {
            const EngineSample closed =
                runEngine(model, arch, PerfEngineKind::kClosedForm);
            const EngineSample event =
                runEngine(model, arch, PerfEngineKind::kEvent);
            closed_ms_total += closed.wall_ms;
            event_ms_total += event.wall_ms;
            saw_stall = saw_stall || event.stall > 0.0;
            table.addRow(
                {model, arch, strformat("%.2f", closed.wall_ms),
                 strformat("%.2f", event.wall_ms),
                 strformat("%.0f", closed.latency),
                 strformat("%.0f", event.latency),
                 strformat("%.2fx", event.latency / closed.latency),
                 strformat("%.0f", event.stall)});
            check.require(event.latency >= closed.latency,
                          "event latency must never undercut the "
                          "closed-form bound ("
                              + model + " x " + arch + ")");
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("total wall: closed-form %.1f ms, event %.1f ms\n",
                closed_ms_total, event_ms_total);

    check.require(saw_stall,
                  "at least one port-limited preset must show real "
                  "contention stall");
    return check.finish("perf_engine");
}
