/**
 * @file
 * Compile-service load generator: an in-process cimmlcd serving N
 * concurrent clients over a models x archs mix, driven in two waves —
 * a cold wave that populates the daemon's artifact memo and a warm
 * wave that repeats the same traffic. Reports compiles/sec, p50/p99
 * client-observed latency, and the cold-vs-warm cache hit rate; the
 * shape checks require every request to succeed and the warm wave to
 * hit the memo where the cold wave could not.
 *
 * Env knobs (for a brief CI run): CIMMLC_LOADGEN_CLIENTS (default 4),
 * CIMMLC_LOADGEN_REQUESTS per client per wave (default 6).
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "daemon/client.h"
#include "daemon/server.h"

using namespace cimmlc;
using bench::ShapeChecker;

namespace {

struct WaveResult {
    std::int64_t requests = 0;
    std::int64_t ok = 0;
    std::int64_t cached = 0;
    double wall_s = 0.0;
    std::vector<double> latencies_ms; // client-observed, per request
};

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[index];
}

std::int64_t
envInt(const char *name, std::int64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::strtoll(value, nullptr, 10);
}

/** One wave: every client drains its request list concurrently. */
WaveResult
runWave(const std::string &socket_path,
        const std::vector<RpcCompileRequest> &mix, int clients,
        int requests_per_client)
{
    WaveResult result;
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<std::int64_t> ok{0};
    std::atomic<std::int64_t> cached{0};

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            auto client = DaemonClient::connectUnixSocket(socket_path);
            CIMMLC_CHECK(client.isOk())
                << client.status().toString();
            for (int r = 0; r < requests_per_client; ++r) {
                const RpcCompileRequest &request =
                    mix[static_cast<std::size_t>(c + r) % mix.size()];
                const auto sent = std::chrono::steady_clock::now();
                auto response = client.value().compile(request);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - sent)
                        .count();
                latencies[static_cast<std::size_t>(c)].push_back(ms);
                if (response.isOk()) {
                    ok.fetch_add(1);
                    if (response.value().cached)
                        cached.fetch_add(1);
                } else {
                    std::fprintf(stderr, "loadgen: %s\n",
                                 response.status().toString().c_str());
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    result.wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

    result.requests =
        static_cast<std::int64_t>(clients) * requests_per_client;
    result.ok = ok.load();
    result.cached = cached.load();
    for (const auto &per_client : latencies)
        result.latencies_ms.insert(result.latencies_ms.end(),
                                   per_client.begin(),
                                   per_client.end());
    return result;
}

} // namespace

int
main()
{
    std::puts("=== cimmlcd load generator (concurrent clients, "
              "cold vs warm waves) ===");
    const int clients =
        static_cast<int>(envInt("CIMMLC_LOADGEN_CLIENTS", 4));
    const int requests =
        static_cast<int>(envInt("CIMMLC_LOADGEN_REQUESTS", 6));
    std::printf("clients: %d, requests per client per wave: %d\n\n",
                clients, requests);

    const std::vector<RpcCompileRequest> mix = [] {
        std::vector<RpcCompileRequest> requests_;
        const char *models[] = {"conv_relu_toy", "mlp", "lenet5"};
        const char *archs[] = {"tutorial", "jain"};
        for (const char *model : models) {
            for (const char *arch : archs) {
                RpcCompileRequest request;
                request.model = model;
                request.arch = arch;
                requests_.push_back(request);
            }
        }
        return requests_;
    }();

    DaemonConfig config;
    config.unix_path =
        "/tmp/cimmlcd_loadgen_" + std::to_string(::getpid()) + ".sock";
    config.max_inflight = clients;
    config.max_queue_depth = static_cast<std::int64_t>(clients)
                             * requests;
    DaemonServer server(std::move(config));
    {
        const Status started = server.start();
        CIMMLC_CHECK(started.isOk()) << started.toString();
    }

    const WaveResult cold =
        runWave(server.config().unix_path, mix, clients, requests);
    const WaveResult warm =
        runWave(server.config().unix_path, mix, clients, requests);
    server.stop();

    ShapeChecker check;
    TextTable table({"wave", "requests", "ok", "compiles/sec",
                     "p50 (ms)", "p99 (ms)", "memo hit rate"});
    for (const auto &[name, wave] :
         {std::pair<const char *, const WaveResult &>{"cold", cold},
          {"warm", warm}}) {
        table.addRow(
            {name, strformat("%lld", (long long)wave.requests),
             strformat("%lld", (long long)wave.ok),
             strformat("%.1f",
                       wave.wall_s > 0.0
                           ? static_cast<double>(wave.ok) / wave.wall_s
                           : 0.0),
             strformat("%.2f", quantile(wave.latencies_ms, 0.5)),
             strformat("%.2f", quantile(wave.latencies_ms, 0.99)),
             bench::percentStr(
                 wave.requests > 0
                     ? static_cast<double>(wave.cached)
                           / static_cast<double>(wave.requests)
                     : 0.0)});
    }
    std::fputs(table.render().c_str(), stdout);

    check.require(cold.ok == cold.requests,
                  "every cold-wave compile succeeded");
    check.require(warm.ok == warm.requests,
                  "every warm-wave compile succeeded");
    // The warm wave repeats the cold wave's traffic: every request has
    // a memoized artifact, so the hit rate must be total — and in
    // particular higher than the cold wave's (which can only hit on
    // duplicates within its own wave).
    check.require(warm.cached == warm.requests,
                  "warm wave served entirely from the artifact memo");
    check.require(warm.cached > cold.cached,
                  "warm wave hit the memo more than the cold wave");
    return check.finish("daemon_loadgen");
}
