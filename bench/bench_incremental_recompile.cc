/**
 * @file
 * Incremental recompilation: cold compile vs stage-cache warm replays.
 *
 * A CompilerSession wired to an ArtifactCache derives a fingerprint key
 * per stage from that stage's own inputs, so a repeated request replays
 * every stage after load and a request that changes one stage input
 * re-runs only the invalidated suffix. This bench measures that on
 * resnet18/isaac-baseline: a cold compile, an identical warm recompile,
 * a warm recompile after a schedule-option change (only the schedule ->
 * codegen -> lint -> perf suffix re-runs), and a warm recompile on a
 * different architecture (nothing replays — the base digest changed).
 */
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "cache/artifact_cache.h"
#include "common/strutil.h"
#include "common/table.h"
#include "compiler/session.h"

using namespace cimmlc;
using bench::ShapeChecker;

namespace {

struct RunOutcome {
    double wall_ms = 0.0;
    std::size_t stages = 0;
    std::size_t replayed = 0;
};

CompileRequest
makeRequest(const char *arch, const char *opt)
{
    CompileRequest request;
    request.model = "resnet18";
    request.arch = arch;
    request.opt = opt;
    request.lint = true;
    request.outputs.schedule_report = true;
    request.outputs.flow_text = true;
    return request;
}

bool
runOnce(CompileRequest request, ArtifactCache *cache, RunOutcome *out)
{
    request.artifact_cache = cache;
    CompilerSession session(std::move(request));
    const auto start = std::chrono::steady_clock::now();
    auto result = session.run();
    const auto stop = std::chrono::steady_clock::now();
    if (!result.isOk()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     result.status().toString().c_str());
        return false;
    }
    out->wall_ms = std::chrono::duration<double, std::milli>(stop - start)
                       .count();
    out->stages = result.value().stages.size();
    out->replayed = CompilerSession::cachedStageCount(result.value());
    return true;
}

} // namespace

int
main()
{
    std::puts("=== Incremental recompile: stage-level artifact cache ===");
    ShapeChecker check;
    ArtifactCache cache;

    struct Scenario {
        const char *name;
        const char *arch;
        const char *opt;
    };
    const Scenario scenarios[] = {
        {"cold compile", "isaac-baseline", "full"},
        {"warm, identical request", "isaac-baseline", "full"},
        {"warm, schedule option changed", "isaac-baseline", "cg+mvm"},
        {"warm, architecture changed", "puma", "full"},
    };

    TextTable table({"scenario", "stages", "replayed", "recomputed",
                     "wall (ms)", "vs cold"});
    double cold_ms = 0.0;
    RunOutcome outcomes[4];
    for (std::size_t i = 0; i < 4; ++i) {
        const Scenario &scenario = scenarios[i];
        if (!runOnce(makeRequest(scenario.arch, scenario.opt), &cache,
                     &outcomes[i]))
            return 1;
        if (i == 0)
            cold_ms = outcomes[i].wall_ms;
        table.addRow({scenario.name, std::to_string(outcomes[i].stages),
                      std::to_string(outcomes[i].replayed),
                      std::to_string(outcomes[i].stages
                                     - outcomes[i].replayed),
                      strformat("%.2f", outcomes[i].wall_ms),
                      bench::speedupStr(cold_ms / outcomes[i].wall_ms)});
    }
    std::fputs(table.render().c_str(), stdout);

    // The cold run computes everything; load always executes (it builds
    // the base digest every key chains from).
    check.require(outcomes[0].replayed == 0,
                  "cold run must not replay any stage");
    check.require(outcomes[1].replayed == outcomes[1].stages - 1,
                  "identical warm run must replay every stage but load");
    check.require(outcomes[1].replayed * 2 >= outcomes[1].stages,
                  "warm recompile must skip at least half the stages");
    // A schedule-option change invalidates the schedule -> codegen ->
    // lint -> perf suffix; only validate still replays.
    check.require(outcomes[2].replayed == 1,
                  "schedule-option change must re-run the whole "
                  "schedule suffix");
    check.require(outcomes[3].replayed == 0,
                  "architecture change must invalidate every stage");

    std::printf("\ncache: %zu entries, %lld hits, %lld misses\n",
                cache.size(), static_cast<long long>(cache.hits()),
                static_cast<long long>(cache.misses()));
    return check.finish("bench_incremental_recompile");
}
