/**
 * @file
 * Reproduces Figure 21: multi-level scheduling ablation on the ResNet
 * series over the Table 3 ISAAC-style baseline.
 *
 *  (a) CG-grained: pipeline-only (paper 2.3x->4.7x rising with depth),
 *      duplication-only (25.4x->3.1x falling with model size), and
 *      combined P&D (up to 123x), vs no optimization.
 *  (b) CG+MVM duplication over CG-P&D (paper ~1.8x RN50 / ~1.4x RN101).
 *  (c) CG+MVM+VVM remap over CG+MVM (paper ~1.10x for RN50).
 *  (d) normalized peak power: CG raises it ~5-16x over no-opt; the MVM
 *      pipeline then cuts it by up to 85% (RN101).
 */
#include <cstdio>
#include <map>

#include "arch/presets.h"
#include "bench_util.h"
#include "common/table.h"
#include "compiler/compiler.h"
#include "graph/models.h"
#include "perfsim/perf_model.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;
using bench::speedupStr;

namespace {

struct Row {
    double none = 0.0;
    double cg_pipe = 0.0;
    double cg_dup = 0.0;
    double cg_pd = 0.0;
    double mvm = 0.0;
    double vvm = 0.0;
    std::int64_t peak_none = 0;
    std::int64_t peak_cg = 0;
    std::int64_t peak_mvm = 0;
};

double
latencyFor(const Graph &graph, const CimArchitecture &arch,
           const ScheduleOptions &options, std::int64_t *peak = nullptr)
{
    auto schedule = scheduleGraph(graph, arch, options);
    CIMMLC_CHECK(schedule.isOk()) << schedule.status().toString();
    if (peak != nullptr)
        *peak = schedule.value().peak_active_xbs;
    return schedule.value().total_latency_cycles;
}

} // namespace

int
main()
{
    std::puts("=== Figure 21: multi-level ablation, ResNet series on the "
              "Table 3 baseline ===");
    const CimArchitecture arch = presets::isaacBaseline();
    const std::vector<std::string> nets = {"resnet18", "resnet34",
                                           "resnet50", "resnet101"};

    std::map<std::string, Row> rows;
    for (const std::string &net : nets) {
        const Graph graph = models::byName(net);
        Row row;

        ScheduleOptions none = ScheduleOptions::none();
        row.none = latencyFor(graph, arch, none, &row.peak_none);

        ScheduleOptions pipe = ScheduleOptions::none();
        pipe.cg_pipeline = true;
        row.cg_pipe = latencyFor(graph, arch, pipe);

        ScheduleOptions dup = ScheduleOptions::none();
        dup.cg_duplication = true;
        row.cg_dup = latencyFor(graph, arch, dup);

        row.cg_pd =
            latencyFor(graph, arch, ScheduleOptions::cgOnly(),
                       &row.peak_cg);
        // Figure 21(b) isolates MVM *duplication*; the staggered MVM
        // pipeline enters the peak-power comparison of Figure 21(d).
        ScheduleOptions mvm_dup_only = ScheduleOptions::cgOnly();
        mvm_dup_only.mvm_duplication = true;
        row.mvm = latencyFor(graph, arch, mvm_dup_only);
        latencyFor(graph, arch, ScheduleOptions::cgMvm(), &row.peak_mvm);
        ScheduleOptions vvm_opts = mvm_dup_only;
        vvm_opts.vvm_remap = true;
        row.vvm = latencyFor(graph, arch, vvm_opts);
        rows[net] = row;
    }

    // ----- (a) CG-grained speedups over no optimization ------------------
    TextTable ta({"network", "CG-Pipeline", "CG-Duplication", "CG-P&D",
                  "paper P&D trend"});
    for (const std::string &net : nets) {
        const Row &r = rows[net];
        ta.addRow({net, speedupStr(r.none / r.cg_pipe),
                   speedupStr(r.none / r.cg_dup),
                   speedupStr(r.none / r.cg_pd),
                   net == "resnet18" ? "pipe 2.3x, dup 25.4x"
                                     : (net == "resnet101"
                                            ? "pipe 4.7x, dup 3.1x, "
                                              "P&D up to 123x"
                                            : "")});
    }
    std::puts("\n(a) CG-grained speedup vs w/o optimization");
    std::fputs(ta.render().c_str(), stdout);

    // ----- (b)(c) finer levels -------------------------------------------
    TextTable tb({"network", "CG+MVM vs CG-P&D", "CG+MVM+VVM vs CG+MVM",
                  "paper"});
    for (const std::string &net : nets) {
        const Row &r = rows[net];
        std::string paper;
        if (net == "resnet50")
            paper = "MVM ~1.8x, VVM ~1.10x";
        if (net == "resnet101")
            paper = "MVM ~1.4x";
        tb.addRow({net, speedupStr(r.cg_pd / r.mvm),
                   speedupStr(r.mvm / r.vvm), paper});
    }
    std::puts("\n(b)(c) MVM / VVM incremental speedup");
    std::fputs(tb.render().c_str(), stdout);

    // ----- (d) normalized peak power -------------------------------------
    TextTable td({"network", "w/o opt", "CG (norm.)", "CG+MVM (norm.)",
                  "MVM reduction"});
    for (const std::string &net : nets) {
        const Row &r = rows[net];
        const double cg_norm = static_cast<double>(r.peak_cg) /
                               static_cast<double>(r.peak_none);
        const double mvm_norm = static_cast<double>(r.peak_mvm) /
                                static_cast<double>(r.peak_none);
        td.addRow({net, "1.0x", speedupStr(cg_norm),
                   speedupStr(mvm_norm),
                   bench::percentStr(1.0 - mvm_norm / cg_norm)});
    }
    std::puts("\n(d) normalized peak activated crossbars "
              "(paper: CG raises ~5-16x; MVM pipeline cuts up to 85%)");
    std::fputs(td.render().c_str(), stdout);

    // ----- shape checks ---------------------------------------------------
    ShapeChecker check;
    for (const std::string &net : nets) {
        const Row &r = rows[net];
        check.require(r.cg_pipe < r.none,
                      net + ": pipeline must beat no-opt");
        check.require(r.cg_dup < r.none,
                      net + ": duplication must beat no-opt");
        check.require(r.cg_pd <= r.cg_pipe && r.cg_pd <= r.cg_dup,
                      net + ": P&D must beat either technique alone");
        check.require(r.mvm <= r.cg_pd * 1.0001,
                      net + ": MVM level must not slow CG down");
        check.require(r.vvm <= r.mvm * 1.0001,
                      net + ": VVM level must not slow MVM down");
        check.require(r.peak_cg > r.peak_none,
                      net + ": CG optimization raises peak power");
        check.require(r.peak_mvm < r.peak_cg,
                      net + ": MVM pipeline lowers peak power");
    }
    // Trend checks across depth.
    check.require(rows["resnet18"].none / rows["resnet18"].cg_dup >
                      rows["resnet101"].none / rows["resnet101"].cg_dup,
                  "duplication speedup falls as the model grows");
    check.require(rows["resnet101"].none / rows["resnet101"].cg_pipe >
                      rows["resnet18"].none / rows["resnet18"].cg_pipe,
                  "pipeline speedup rises with depth");
    return check.finish("fig21");
}
