/**
 * @file
 * Reproduces Figure 20(c): CIM-MLC vs Jain et al.'s JSSC'21 SRAM macro
 * (Figure 19 abstraction, WLM mode, VGG7 benchmark).
 *
 * Paper: CG-grained alone gives 1.2x (limited on-chip resources), adding
 * MVM-grained brings no further speedup (too few crossbars per core for
 * Equation (1) to exploit), and the full three-level schedule with the
 * VVM remap reaches 2.3x by parallelizing the <=32-row activations.
 */
#include <cstdio>

#include "arch/presets.h"
#include "baselines/vendor.h"
#include "bench_util.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;
using bench::speedupStr;

int
main()
{
    std::puts("=== Figure 20(c): vs Jain et al. [27] (JSSC'21, WLM) ===");
    const CimArchitecture arch = presets::jainJssc21();
    // The paper benchmarks VGG7 "under the same resource constraints";
    // the macro's 16K-weight capacity is ~300x smaller than VGG7, so we
    // run the macro-scale VGG-style CNN (see EXPERIMENTS.md).
    const Graph graph = models::macroCnn();

    auto vendor = jainVendorSchedule(graph, arch);
    CIMMLC_CHECK(vendor.isOk()) << vendor.status().toString();
    const double jain = vendor.value().total_latency_cycles;

    auto cg = scheduleGraph(graph, arch, ScheduleOptions::cgOnly());
    CIMMLC_CHECK(cg.isOk()) << cg.status().toString();
    auto cg_mvm = scheduleGraph(graph, arch, ScheduleOptions::cgMvm());
    CIMMLC_CHECK(cg_mvm.isOk()) << cg_mvm.status().toString();
    auto full = scheduleGraph(graph, arch, ScheduleOptions::full());
    CIMMLC_CHECK(full.isOk()) << full.status().toString();

    const double l_cg = cg.value().total_latency_cycles;
    const double l_mvm = cg_mvm.value().total_latency_cycles;
    const double l_full = full.value().total_latency_cycles;

    TextTable table({"schedule", "speedup (ours)", "speedup (paper)"});
    table.addRow({"Jain et al. [27]", "1.00x", "1.0x"});
    table.addRow({"CG-grained", speedupStr(jain / l_cg), "1.2x"});
    table.addRow({"CG+MVM-grained", speedupStr(jain / l_mvm), "1.2x"});
    table.addRow({"CG+MVM+VVM-grained", speedupStr(jain / l_full),
                  "2.3x"});
    std::fputs(table.render().c_str(), stdout);

    ShapeChecker check;
    check.require(l_cg < jain, "CG level must beat the vendor flow");
    check.requireRatio(jain / l_cg, 1.0, 1.02, 2.2,
                       "CG speedup in the paper's ~1.2x band");
    check.requireRatio(l_cg, l_mvm, 0.9, 1.4,
                       "MVM adds little on this resource-poor macro");
    check.require(l_full < l_mvm,
                  "VVM remap must add speedup on a parallel_row=32 "
                  "macro");
    check.requireRatio(jain / l_full, 1.0, 1.5, 4.5,
                       "full-stack speedup in the paper's ~2.3x band");
    return check.finish("fig20c");
}
