/**
 * @file
 * Auto-tuner DSE bench: reproduces the paper's per-configuration
 * exploration tables (Figure 20(d) style) with the tuner doing the
 * sweep, and checks the qualitative shape: the tuned configuration is
 * never worse than the ScheduleOptions{} defaults, strictly better on
 * the pinned (model, arch) pairs where segmentation granularity wins,
 * and identical between serial and multi-threaded evaluation. Also
 * reports the TuneCache effect for repeated model x arch pairs.
 */
#include <chrono>
#include <cstdio>

#include "arch/presets.h"
#include "bench_util.h"
#include "common/strutil.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/autotune.h"

using namespace cimmlc;
using bench::ShapeChecker;

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    std::puts("=== Auto-tuner design-space exploration ===");
    ShapeChecker check;

    TextTable table({"network", "arch", "objective", "default",
                     "tuned", "config", "gain"});
    const char *models[] = {"lenet5", "macro_cnn", "resnet18"};
    const char *archs[] = {"isaac", "jain", "jia"};
    for (const char *model : models) {
        const Graph graph = models::byName(model);
        for (const char *arch_name : archs) {
            const CimArchitecture arch =
                presets::byName(arch_name).value();
            for (TuneObjective objective :
                 {TuneObjective::kLatency, TuneObjective::kEdp}) {
                const AutoTuner tuner(AutoTuneConfig{objective, 0});
                auto result = tuner.tune(graph, arch);
                if (!result.isOk()) {
                    check.require(false,
                                  std::string(model) + " x " + arch_name
                                      + ": " +
                                      result.status().toString());
                    continue;
                }
                const TuneResult &r = result.value();
                const double base =
                    r.defaults().objectiveValue(objective);
                const double tuned =
                    r.best().objectiveValue(objective);
                check.require(tuned <= base,
                              std::string(model) + " x " + arch_name
                                  + ": tuned never worse than default");
                table.addRow({model, arch_name,
                              tuneObjectiveName(objective),
                              strformat("%.4g", base),
                              strformat("%.4g", tuned),
                              r.best().options.toString(),
                              strformat("%.2fx",
                                        r.speedupOverDefault())});
            }
        }
        table.addSeparator();
    }
    std::fputs(table.render().c_str(), stdout);

    // Pinned strict wins: cheap-write chips trade a reload for more
    // duplication budget via the seg<=N knob.
    for (const char *model : {"lenet5", "macro_cnn"}) {
        const AutoTuner tuner(
            AutoTuneConfig{TuneObjective::kLatency, 0});
        auto result = tuner.tune(models::byName(model),
                                 presets::jainJssc21());
        check.require(result.isOk() &&
                          result.value().best().latency_cycles <
                              result.value().defaults().latency_cycles,
                      std::string(model)
                          + " x jain: tuner strictly beats defaults");
    }

    // Determinism: serial and parallel candidate evaluation produce the
    // same report bytes.
    {
        const Graph graph = models::byName("macro_cnn");
        const CimArchitecture arch = presets::jainJssc21();
        const AutoTuner serial(
            AutoTuneConfig{TuneObjective::kLatency, 1});
        const AutoTuner parallel(
            AutoTuneConfig{TuneObjective::kLatency, 4});
        auto a = serial.tune(graph, arch);
        auto b = parallel.tune(graph, arch);
        check.require(a.isOk() && b.isOk() &&
                          a.value().table() == b.value().table(),
                      "serial and 4-thread tuning reports are "
                      "byte-identical");
    }

    // Cache effect: a repeated model x arch pair is served from the
    // memo (every candidate hits; the rerun must not be slower by more
    // than noise).
    {
        const Graph graph = models::byName("resnet18");
        const CimArchitecture arch = presets::isaacBaseline();
        TuneCache cache;
        const AutoTuner tuner(
            AutoTuneConfig{TuneObjective::kLatency, 1, &cache});
        auto start = std::chrono::steady_clock::now();
        auto cold = tuner.tune(graph, arch);
        const double cold_ms = millisSince(start);
        start = std::chrono::steady_clock::now();
        auto warm = tuner.tune(graph, arch);
        const double warm_ms = millisSince(start);
        check.require(
            cold.isOk() && warm.isOk() &&
                warm.value().cache_hits ==
                    static_cast<std::int64_t>(
                        warm.value().candidates.size()),
            "second tuning run is fully served from the cache");
        std::printf("cache: cold %.1f ms, warm %.1f ms (%zu candidate "
                    "evaluations memoized)\n",
                    cold_ms, warm_ms, cache.size());
    }

    return check.finish("autotune");
}
