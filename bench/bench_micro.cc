/**
 * @file
 * google-benchmark micro-benchmarks for the compiler itself: scheduling
 * throughput across models and levels, code generation, flow printing,
 * and the simulators. These quantify the "tractable yet effective design
 * space" claim — the full multi-level schedule of ResNet101 must stay in
 * the milliseconds.
 */
#include <benchmark/benchmark.h>

#include "arch/presets.h"
#include "baselines/poly_schedule.h"
#include "compiler/compiler.h"
#include "funcsim/simulator.h"
#include "graph/models.h"
#include "graph/reference.h"
#include "mop/printer.h"
#include "perfsim/trace_engine.h"
#include "sched/multi_level.h"

using namespace cimmlc;

namespace {

void
BM_ScheduleResnet(benchmark::State &state)
{
    const Graph graph = models::byName(
        state.range(0) == 0 ? "resnet18" : "resnet101");
    const CimArchitecture arch = presets::isaacBaseline();
    for (auto _ : state) {
        auto schedule =
            scheduleGraph(graph, arch, ScheduleOptions::full());
        benchmark::DoNotOptimize(schedule);
    }
}
BENCHMARK(BM_ScheduleResnet)->Arg(0)->Arg(1);

void
BM_ScheduleVit(benchmark::State &state)
{
    const Graph graph = models::vitBase();
    const CimArchitecture arch = presets::isaacBaseline();
    for (auto _ : state) {
        auto schedule =
            scheduleGraph(graph, arch, ScheduleOptions::full());
        benchmark::DoNotOptimize(schedule);
    }
}
BENCHMARK(BM_ScheduleVit);

void
BM_PolyScheduleVgg16(benchmark::State &state)
{
    const Graph graph = models::vgg16();
    const CimArchitecture arch = presets::isaacBaseline();
    for (auto _ : state) {
        auto result = polySchedule(graph, arch);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_PolyScheduleVgg16);

void
BM_CodegenCompressed(benchmark::State &state)
{
    const Graph graph = models::vgg16();
    const CimArchitecture arch = presets::isaacBaseline();
    auto schedule = scheduleGraph(graph, arch, ScheduleOptions::full());
    CodegenOptions options;
    options.unroll = false;
    for (auto _ : state) {
        auto code =
            generateProgram(graph, arch, schedule.value(), options);
        benchmark::DoNotOptimize(code);
    }
}
BENCHMARK(BM_CodegenCompressed);

void
BM_CodegenUnrolledLenet(benchmark::State &state)
{
    Graph graph = models::lenet5();
    Rng rng(3);
    graph.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(graph, arch, ScheduleOptions::full());
    for (auto _ : state) {
        auto code = generateProgram(graph, arch, schedule.value());
        benchmark::DoNotOptimize(code);
    }
}
BENCHMARK(BM_CodegenUnrolledLenet);

void
BM_FuncsimConvRelu(benchmark::State &state)
{
    Graph graph = models::convReluToy();
    Rng rng(7);
    graph.randomizeWeights(rng);
    Int8Tensor image(TensorShape({1, 3, 32, 32}));
    image.fillRandom(rng, -16, 16);
    std::map<TensorId, Int8Tensor> inputs{{graph.inputs()[0], image}};
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto reference = runReference(graph, inputs);
    auto schedule = scheduleGraph(graph, arch, ScheduleOptions::full());
    CodegenOptions options;
    options.shifts = reference.value().shifts;
    auto code = generateProgram(graph, arch, schedule.value(), options);
    for (auto _ : state) {
        FunctionalSimulator sim(arch, code.value());
        Status status =
            sim.loadInput(graph, graph.inputs()[0], image);
        status = sim.run();
        benchmark::DoNotOptimize(status);
    }
}
BENCHMARK(BM_FuncsimConvRelu);

void
BM_TraceEngineConvRelu(benchmark::State &state)
{
    Graph graph = models::convReluToy();
    Rng rng(7);
    graph.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kXBM);
    auto schedule = scheduleGraph(graph, arch, ScheduleOptions::full());
    auto code = generateProgram(graph, arch, schedule.value());
    for (auto _ : state) {
        auto report = traceProgram(code.value().program, arch);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_TraceEngineConvRelu);

void
BM_PrintProgram(benchmark::State &state)
{
    Graph graph = models::convReluToy();
    Rng rng(7);
    graph.randomizeWeights(rng);
    const CimArchitecture arch =
        presets::tutorialTable2(ComputeMode::kWLM);
    auto schedule = scheduleGraph(graph, arch, ScheduleOptions::full());
    auto code = generateProgram(graph, arch, schedule.value());
    for (auto _ : state) {
        std::string text = printProgram(code.value().program);
        benchmark::DoNotOptimize(text);
    }
}
BENCHMARK(BM_PrintProgram);

void
BM_BuildResnet101(benchmark::State &state)
{
    for (auto _ : state) {
        Graph graph = models::resnet101();
        benchmark::DoNotOptimize(graph);
    }
}
BENCHMARK(BM_BuildResnet101);

} // namespace

BENCHMARK_MAIN();
