/**
 * @file
 * Reproduces Figure 20(d): latency vs Poly-Schedule [22] on the Table 3
 * baseline (VGG16).
 *
 * Paper: relative to the unoptimized deployment, Poly-Schedule's greedy
 * duplication + batch pipeline removes ~84% of computation cycles;
 * CIM-MLC's fine-grained multi-level schedule removes ~95%, i.e. ~3.2x
 * over Poly-Schedule.
 */
#include <cstdio>

#include "arch/presets.h"
#include "baselines/poly_schedule.h"
#include "baselines/vendor.h"
#include "bench_util.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;
using bench::percentStr;
using bench::speedupStr;

int
main()
{
    std::puts("=== Figure 20(d): vs Poly-Schedule [22] (VGG16, Table 3 "
              "baseline) ===");
    const CimArchitecture arch = presets::isaacBaseline();
    const Graph graph = models::vgg16();

    auto none = noOptSchedule(graph, arch);
    CIMMLC_CHECK(none.isOk()) << none.status().toString();
    auto poly = polySchedule(graph, arch);
    CIMMLC_CHECK(poly.isOk()) << poly.status().toString();
    auto ours = scheduleGraph(graph, arch, ScheduleOptions::full());
    CIMMLC_CHECK(ours.isOk()) << ours.status().toString();

    const double l0 = none.value().total_latency_cycles;
    const double lp = poly.value().schedule.total_latency_cycles;
    const double lo = ours.value().total_latency_cycles;

    TextTable table({"schedule", "latency (cycles)", "reduction",
                     "paper"});
    table.addRow({"w/o optimization", strformat("%.4g", l0), "-", "-"});
    table.addRow({"Poly-Schedule [22]", strformat("%.4g", lp),
                  percentStr(1.0 - lp / l0), "84%"});
    table.addRow({"CIM-MLC (ours)", strformat("%.4g", lo),
                  percentStr(1.0 - lo / l0), "95%"});
    std::fputs(table.render().c_str(), stdout);
    std::printf("CIM-MLC speedup over Poly-Schedule: %s (paper ~3.2x)\n",
                speedupStr(lp / lo).c_str());

    ShapeChecker check;
    check.require(lp < l0, "Poly-Schedule must beat no optimization");
    check.require(lo < lp, "CIM-MLC must beat Poly-Schedule");
    check.requireRatio(1.0 - lp / l0, 1.0, 0.5, 0.98,
                       "Poly reduction near the paper's 84%");
    check.requireRatio(1.0 - lo / l0, 1.0, 0.85, 1.0,
                       "CIM-MLC reduction near the paper's 95%");
    check.requireRatio(lp / lo, 1.0, 1.5, 8.0,
                       "CIM-MLC vs Poly speedup near the paper's 3.2x");
    return check.finish("fig20d");
}
