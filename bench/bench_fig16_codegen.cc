/**
 * @file
 * Reproduces Figure 16: generated meta-operator flows for the
 * Convolution-ReLU walkthrough (Section 3.4) on the Table 2 tutorial
 * chip under CM, XBM, and WLM interfaces, with the paper's headline
 * numbers checked structurally:
 *  - CM: duplication 2, two parallel cim.readcore calls;
 *  - XBM: duplication updated 2 -> 4 (Equation (1)), 1024 MVM windows;
 *  - WLM: data remapped across two crossbars (spread 2), cim.readrow in
 *    16-row groups.
 */
#include <cstdio>

#include "arch/presets.h"
#include "bench_util.h"
#include "compiler/compiler.h"
#include "graph/models.h"
#include "mop/printer.h"
#include "mop/validator.h"

using namespace cimmlc;
using bench::ShapeChecker;

int
main()
{
    std::puts("=== Figure 16: Conv-ReLU codegen walkthrough (Table 2 "
              "chip) ===");
    const Graph graph = models::convReluToy();
    ShapeChecker check;

    for (ComputeMode mode :
         {ComputeMode::kCM, ComputeMode::kXBM, ComputeMode::kWLM}) {
        const CimArchitecture arch = presets::tutorialTable2(mode);
        CimCompiler compiler(arch);
        auto result = compiler.compile(graph);
        CIMMLC_CHECK(result.isOk()) << result.status().toString();
        const CompileResult &compiled = result.value();

        std::printf("\n--- %s interface ---\n", computeModeName(mode));
        PrintOptions print;
        print.max_statements = 18;
        std::fputs(printProgram(compiled.code.program, print).c_str(),
                   stdout);

        const Status valid =
            validateProgram(compiled.code.program, arch);
        check.require(valid.isOk(),
                      std::string(computeModeName(mode)) +
                          ": flow validates (" + valid.toString() + ")");

        const OperatorMapping &conv = compiled.schedule.ops.at(1);
        if (mode == ComputeMode::kCM) {
            check.require(conv.duplication == 2,
                          "CM: operator duplicated twice (2 cores)");
        } else if (mode == ComputeMode::kXBM) {
            check.require(conv.mvm_duplication == 4,
                          "XBM: Equation (1) updates duplication 2 -> 4");
            check.require(conv.windows == 1024,
                          "XBM: 1024 MVM windows for the convolution");
        } else {
            check.require(conv.vvm_spread >= 2,
                          "WLM: rows remapped across >= 2 crossbars");
        }
    }
    return check.finish("fig16");
}
