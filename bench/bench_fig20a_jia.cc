/**
 * @file
 * Reproduces Figure 20(a): CIM-MLC vs Jia et al.'s ISSCC'21 SRAM
 * accelerator scheduling (Figure 17 abstraction, CM mode).
 *
 * Paper: CG-grained pipeline alone gives 1.2x over Jia et al.'s own
 * deployment (model exceeds on-chip resources, so pipelining without
 * the data-mapping design helps little); pipeline + DP duplication
 * (CG-P&D) reaches 3.7x.
 */
#include <cstdio>

#include "arch/presets.h"
#include "baselines/vendor.h"
#include "bench_util.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/multi_level.h"

using namespace cimmlc;
using bench::ShapeChecker;
using bench::speedupStr;

int
main()
{
    std::puts("=== Figure 20(a): vs Jia et al. [29] (ISSCC'21, CM mode) "
              "===");
    const CimArchitecture arch = presets::jiaIsscc21();
    // VGG-scale CNN: large enough that the 16-CIMU chip must segment
    // (the paper notes "the model size exceeds on-chip resources").
    const Graph graph = models::vgg11();

    auto baseline = jiaVendorSchedule(graph, arch);
    CIMMLC_CHECK(baseline.isOk()) << baseline.status().toString();
    const double jia = baseline.value().total_latency_cycles;

    ScheduleOptions pipe_only = ScheduleOptions::none();
    pipe_only.cg_pipeline = true;
    auto with_pipe = scheduleGraph(graph, arch, pipe_only);
    CIMMLC_CHECK(with_pipe.isOk()) << with_pipe.status().toString();
    const double pipe = with_pipe.value().total_latency_cycles;

    auto with_pd = scheduleGraph(graph, arch, ScheduleOptions::cgOnly());
    CIMMLC_CHECK(with_pd.isOk()) << with_pd.status().toString();
    const double pd = with_pd.value().total_latency_cycles;

    TextTable table({"schedule", "speedup (ours)", "speedup (paper)"});
    table.addRow({"Jia et al. [29]", "1.00x", "1.0x"});
    table.addRow({"CG-grained w/ Pipeline", speedupStr(jia / pipe),
                  "1.2x"});
    table.addRow({"CG-grained w/ P&D", speedupStr(jia / pd), "3.7x"});
    std::fputs(table.render().c_str(), stdout);
    std::printf("segments: %zu (chip cannot hold the whole model)\n",
                with_pd.value().segments.size());

    ShapeChecker check;
    check.require(pipe < jia, "pipeline must beat the vendor schedule");
    check.require(pd < pipe, "P&D must beat pipeline alone");
    check.requireRatio(jia / pipe, 1.0, 1.02, 2.0,
                       "pipeline-only speedup in the paper's low band");
    check.requireRatio(jia / pd, 1.0, 1.8, 8.0,
                       "P&D speedup in the paper's ~3.7x band");
    check.require(with_pd.value().segments.size() > 1,
                  "model exceeds on-chip resources -> segmentation");
    return check.finish("fig20a");
}
