/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: each bench
 * prints a paper-expected vs measured table and returns nonzero when the
 * qualitative shape (ordering / rough factors) is violated.
 */
#ifndef CIMMLC_BENCH_BENCH_UTIL_H
#define CIMMLC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strutil.h"
#include "common/table.h"

namespace cimmlc::bench {

/** Collects shape-check failures across a bench run. */
class ShapeChecker
{
  public:
    /** Requires @p condition; records @p what on failure. */
    void
    require(bool condition, const std::string &what)
    {
        if (!condition) {
            failures_.push_back(what);
            std::fprintf(stderr, "[shape-check FAILED] %s\n",
                         what.c_str());
        }
    }

    /** Requires a/b to be within [lo, hi]. */
    void
    requireRatio(double a, double b, double lo, double hi,
                 const std::string &what)
    {
        const double ratio = b != 0.0 ? a / b : 0.0;
        require(ratio >= lo && ratio <= hi,
                strformat("%s: ratio %.3g outside [%.3g, %.3g]",
                          what.c_str(), ratio, lo, hi));
    }

    /** Prints the verdict; returns the process exit code. */
    int
    finish(const std::string &bench_name) const
    {
        if (failures_.empty()) {
            std::printf("\n[%s] all shape checks PASSED\n",
                        bench_name.c_str());
            return 0;
        }
        std::printf("\n[%s] %zu shape check(s) FAILED\n",
                    bench_name.c_str(), failures_.size());
        return 1;
    }

  private:
    std::vector<std::string> failures_;
};

/** Formats a speedup like "3.2x". */
inline std::string
speedupStr(double value)
{
    return strformat("%.2fx", value);
}

/** Formats a percentage like "84%". */
inline std::string
percentStr(double fraction)
{
    return strformat("%.0f%%", fraction * 100.0);
}

} // namespace cimmlc::bench

#endif // CIMMLC_BENCH_BENCH_UTIL_H
