/**
 * @file
 * Reproduces Table 1: the generality matrix. The prior-work rows are
 * transcribed from the paper; the CIM-MLC row is demonstrated by
 * actually compiling a network on every device type x computing mode
 * combination (see compiler/capability.cc).
 */
#include <cstdio>

#include "bench_util.h"
#include "compiler/capability.h"

using namespace cimmlc;
using bench::ShapeChecker;

int
main()
{
    std::puts("=== Table 1: generality comparison ===");
    auto table = renderCapabilityTable();
    if (!table.isOk()) {
        std::fprintf(stderr, "capability probe failed: %s\n",
                     table.status().toString().c_str());
        return 1;
    }
    std::fputs(table.value().c_str(), stdout);

    auto ours = probeCimMlc();
    ShapeChecker check;
    check.require(ours.isOk(), "capability probe must succeed");
    if (ours.isOk()) {
        check.require(ours.value().sram, "SRAM devices compile");
        check.require(ours.value().reram, "ReRAM devices compile");
        check.require(ours.value().misc,
                      "FLASH/PCM/STT-MRAM devices compile");
        check.require(ours.value().vvm && ours.value().mvm &&
                          ours.value().dnn_operator,
                      "all three interface granularities supported");
    }
    return check.finish("table1");
}
