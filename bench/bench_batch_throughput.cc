/**
 * @file
 * Batch-compilation throughput: the Figure 21/22 design-space sweep
 * (models x architecture presets) run as one serial loop and again on
 * the work-stealing pool. Checks that the parallel run's aggregated
 * table is byte-identical to the serial loop's, and — on hosts with
 * >= 4 hardware threads — that the parallel run is > 2x faster.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "compiler/batch.h"

using namespace cimmlc;
using bench::ShapeChecker;

namespace {

double
runSweep(const std::vector<BatchJob> &jobs, int threads,
         std::string *table_out)
{
    const BatchCompiler batch(ScheduleOptions::full(), threads);
    const auto start = std::chrono::steady_clock::now();
    auto result = batch.run(jobs);
    const auto stop = std::chrono::steady_clock::now();
    CIMMLC_CHECK(result.isOk()) << result.status().toString();
    CIMMLC_CHECK_EQ(result.value().okCount(),
                    static_cast<std::int64_t>(jobs.size()));
    *table_out = result.value().table();
    return std::chrono::duration<double>(stop - start).count();
}

} // namespace

int
main()
{
    std::puts("=== Batch compilation throughput (DSE sweep, serial vs "
              "work-stealing pool) ===");
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("hardware threads: %u\n\n", hw);

    auto jobs = BatchCompiler::crossProduct(
        {"resnet18", "resnet34", "resnet50", "vgg11", "vgg16",
         "vit_tiny"},
        {"isaac", "puma", "jia"});
    CIMMLC_CHECK(jobs.isOk()) << jobs.status().toString();

    ShapeChecker check;
    std::string serial_table;
    std::string parallel_table;

    // Warm-up pass so first-touch allocation noise does not skew the
    // serial measurement.
    std::string scratch;
    runSweep(jobs.value(), 1, &scratch);

    const double serial_s = runSweep(jobs.value(), 1, &serial_table);
    const double parallel_s = runSweep(jobs.value(), 0, &parallel_table);

    std::fputs(parallel_table.c_str(), stdout);

    TextTable summary({"path", "threads", "wall (s)", "speedup"});
    summary.addRow({"serial loop", "1", strformat("%.3f", serial_s),
                    "1.00x"});
    summary.addRow({"work-stealing pool",
                    strformat("%u", hw == 0 ? 1 : hw),
                    strformat("%.3f", parallel_s),
                    bench::speedupStr(serial_s / parallel_s)});
    std::fputs(summary.render().c_str(), stdout);

    check.require(serial_table == parallel_table,
                  "parallel sweep table is byte-identical to the serial "
                  "loop's");
    // CIMMLC_REQUIRE_SPEEDUP=0 downgrades the wall-clock assertion to a
    // report, for noisy shared CI runners where the determinism check is
    // the meaningful gate.
    const char *strict = std::getenv("CIMMLC_REQUIRE_SPEEDUP");
    if (strict && std::strcmp(strict, "0") == 0) {
        std::printf("\n(note: CIMMLC_REQUIRE_SPEEDUP=0 — speedup %.2fx "
                    "reported, not enforced)\n",
                    serial_s / parallel_s);
    } else if (hw >= 4) {
        check.require(serial_s / parallel_s > 2.0,
                      strformat("parallel sweep > 2x faster on %u "
                                "hardware threads (got %.2fx)",
                                hw, serial_s / parallel_s));
    } else {
        std::printf("\n(note: %u hardware thread(s) — the >2x speedup "
                    "check needs >= 4 and was skipped)\n",
                    hw);
    }
    return check.finish("batch_throughput");
}
