/**
 * @file
 * Quickstart: reproduces the paper's Section 3.4 walkthrough (Table 2 +
 * Figure 16) through the staged session API. One CompileRequest per
 * computing mode (CM, XBM, WLM) compiles the Conv-ReLU toy network —
 * conv input (3,32,32), kernel (32,3,3,3), stride 1, padding 1 — for
 * the Table 2 tutorial chip; each session schedules, generates the
 * meta-operator flow, evaluates performance, and verifies the flow
 * bit-for-bit on the functional simulator, with per-stage wall times
 * streamed through the observer hook.
 */
#include <cstdio>
#include <iostream>

#include "arch/presets.h"
#include "compiler/session.h"
#include "graph/models.h"

using namespace cimmlc;

int
main()
{
    const Graph graph = models::convReluToy();
    std::cout << graph.summary() << "\n";

    for (ComputeMode mode :
         {ComputeMode::kCM, ComputeMode::kXBM, ComputeMode::kWLM}) {
        const CimArchitecture arch = presets::tutorialTable2(mode);
        std::cout << arch.toString();

        CompileRequest request;
        request.graph = &graph;    // borrowed; no copy, no reparse
        request.arch_ref = &arch;
        request.outputs.schedule_report = true;
        request.outputs.flow_text = true;
        request.outputs.flow_limit = 24;
        request.outputs.verify = true; // bit-exact functional check

        CompilerSession session(std::move(request));
        session.setObserver(
            [](const StageTrace &trace, const CompileArtifacts &) {
                std::fprintf(stderr, "  [%s] %.2f ms\n",
                             compileStageName(trace.stage),
                             trace.wall_ms);
            });
        auto result = session.run();
        if (!result.isOk()) {
            std::cerr << "compile failed: "
                      << result.status().toString() << "\n";
            return 1;
        }
        const CompileArtifacts &artifacts = result.value();
        std::cout << artifacts.schedule_report;
        std::cout << artifacts.perf->toString() << "\n\n";
        std::cout << artifacts.flow_text << "\n";

        const VerifyReport &report = *artifacts.verify;
        std::printf("[%s] functional check: %s (%lld elements, %lld "
                    "flow ops)\n",
                    computeModeName(mode),
                    report.match ? "BIT-EXACT MATCH" : "MISMATCH",
                    static_cast<long long>(report.elements_checked),
                    static_cast<long long>(report.flow_ops));
        if (!report.match) {
            std::cerr << "  first mismatch: " << report.first_mismatch
                      << "\n";
            return 1;
        }
    }
    std::puts("quickstart: OK");
    return 0;
}
