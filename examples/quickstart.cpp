/**
 * @file
 * Quickstart: reproduces the paper's Section 3.4 walkthrough (Table 2 +
 * Figure 16). Compiles the Conv-ReLU toy network — conv input (3,32,32),
 * kernel (32,3,3,3), stride 1, padding 1 — for the Table 2 tutorial chip
 * under each computing mode (CM, XBM, WLM) and prints the generated
 * meta-operator flow, then verifies the XBM flow bit-for-bit on the
 * functional simulator.
 */
#include <cstdio>
#include <iostream>

#include "arch/presets.h"
#include "common/rng.h"
#include "compiler/compiler.h"
#include "funcsim/verify.h"
#include "graph/models.h"
#include "mop/printer.h"

using namespace cimmlc;

int
main()
{
    Graph graph = models::convReluToy();
    std::cout << graph.summary() << "\n";

    for (ComputeMode mode :
         {ComputeMode::kCM, ComputeMode::kXBM, ComputeMode::kWLM}) {
        CimArchitecture arch = presets::tutorialTable2(mode);
        std::cout << arch.toString();

        CimCompiler compiler(arch);
        auto result = compiler.compile(graph);
        if (!result.isOk()) {
            std::cerr << "compile failed: "
                      << result.status().toString() << "\n";
            return 1;
        }
        const CompileResult &compiled = result.value();
        std::cout << compiled.schedule.summary(graph);
        std::cout << compiled.perf.toString() << "\n\n";

        PrintOptions print;
        print.max_statements = 24;
        std::cout << printProgram(compiled.code.program, print) << "\n";
    }

    // Functional verification in every mode, against the reference
    // executor (stands in for the paper's PyTorch check).
    Rng rng(7);
    graph.randomizeWeights(rng, -8, 8);
    Int8Tensor image(TensorShape({1, 3, 32, 32}));
    image.fillRandom(rng, -16, 16);
    std::map<TensorId, Int8Tensor> inputs{{graph.inputs()[0], image}};

    for (ComputeMode mode :
         {ComputeMode::kCM, ComputeMode::kXBM, ComputeMode::kWLM}) {
        CimArchitecture arch = presets::tutorialTable2(mode);
        auto verify = verifyCompiledFlow(graph, arch,
                                         ScheduleOptions::full(), inputs);
        if (!verify.isOk()) {
            std::cerr << "verification failed to run: "
                      << verify.status().toString() << "\n";
            return 1;
        }
        const VerifyReport &report = verify.value();
        std::printf("[%s] functional check: %s (%lld elements, %lld "
                    "flow ops)\n",
                    computeModeName(mode),
                    report.match ? "BIT-EXACT MATCH" : "MISMATCH",
                    static_cast<long long>(report.elements_checked),
                    static_cast<long long>(report.flow_ops));
        if (!report.match) {
            std::cerr << "  first mismatch: " << report.first_mismatch
                      << "\n";
            return 1;
        }
    }
    std::puts("quickstart: OK");
    return 0;
}
