/**
 * @file
 * Example: compiling the ResNet series onto the Table 3 ISAAC-style
 * baseline and walking the multi-level optimization ladder — the
 * workload the paper's Figure 21 analyzes.
 *
 * For each network this prints per-level latency, speedup over the
 * unoptimized deployment, peak activated crossbars, and the energy
 * breakdown of the final schedule.
 */
#include <cstdio>
#include <vector>

#include "arch/presets.h"
#include "common/strutil.h"
#include "common/table.h"
#include "compiler/compiler.h"
#include "graph/models.h"
#include "perfsim/perf_model.h"
#include "sched/multi_level.h"

using namespace cimmlc;

int
main()
{
    const CimArchitecture arch = presets::isaacBaseline();
    std::fputs(arch.toString().c_str(), stdout);

    const std::vector<std::string> nets = {"resnet18", "resnet34",
                                           "resnet50", "resnet101"};
    TextTable table({"network", "level", "latency (cycles)", "speedup",
                     "peak xbs", "avg power (mW)"});
    for (const std::string &net : nets) {
        const Graph graph = models::byName(net);
        double baseline = 0.0;
        const std::vector<std::pair<std::string, ScheduleOptions>>
            levels = {{"w/o opt", ScheduleOptions::none()},
                      {"CG-P&D", ScheduleOptions::cgOnly()},
                      {"+MVM", ScheduleOptions::cgMvm()},
                      {"+VVM", ScheduleOptions::full()}};
        for (const auto &[label, options] : levels) {
            auto schedule = scheduleGraph(graph, arch, options);
            if (!schedule.isOk()) {
                std::fprintf(stderr, "%s/%s failed: %s\n", net.c_str(),
                             label.c_str(),
                             schedule.status().toString().c_str());
                return 1;
            }
            auto perf = evaluateSchedule(graph, arch, schedule.value());
            if (!perf.isOk())
                return 1;
            const double latency =
                schedule.value().total_latency_cycles;
            if (label == "w/o opt")
                baseline = latency;
            table.addRow({net, label, strformat("%.4g", latency),
                          strformat("%.2fx", baseline / latency),
                          std::to_string(
                              schedule.value().peak_active_xbs),
                          strformat("%.1f",
                                    perf.value().avg_power_mw)});
        }
        table.addSeparator();
    }
    std::fputs(table.render().c_str(), stdout);

    // Detailed report for one schedule.
    CimCompiler compiler(arch);
    auto result = compiler.compile(models::resnet18());
    if (!result.isOk())
        return 1;
    std::puts("\nResNet18 full-stack schedule:");
    std::fputs(
        result.value().schedule.summary(models::resnet18()).c_str(),
        stdout);
    std::printf("\nperf: %s\n", result.value().perf.toString().c_str());
    std::printf("flow: %s\n",
                result.value().code.program.summary().c_str());
    return 0;
}
