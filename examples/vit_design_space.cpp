/**
 * @file
 * Example: design-space exploration for transformer inference — the
 * Figure 22 methodology as a reusable tool. Sweeps core count, crossbar
 * geometry, and parallel-row width for a ViT workload and reports the
 * full-stack speedup of each point, highlighting the best configuration.
 *
 * This is the "compiler as architecture-evaluation middleware" use the
 * paper's conclusion advertises: the same abstraction that drives code
 * generation prices candidate CIM designs before silicon.
 */
#include <cstdio>
#include <vector>

#include "arch/presets.h"
#include "common/strutil.h"
#include "common/table.h"
#include "graph/models.h"
#include "sched/multi_level.h"

using namespace cimmlc;

namespace {

struct DesignPoint {
    std::int64_t cores;
    std::int64_t xbs_per_core;
    std::int64_t xb_rows;
    std::int64_t xb_cols;
    std::int64_t parallel_row;
};

CimArchitecture
makeArch(const DesignPoint &p)
{
    CimArchitecture arch = presets::isaacBaseline();
    arch.name = strformat(
        "c%lld-x%lld-%lldx%lld-pr%lld", static_cast<long long>(p.cores),
        static_cast<long long>(p.xbs_per_core),
        static_cast<long long>(p.xb_rows),
        static_cast<long long>(p.xb_cols),
        static_cast<long long>(p.parallel_row));
    arch.chip.core_rows = 16;
    arch.chip.core_cols = p.cores / 16;
    arch.core.xb_rows = 1;
    arch.core.xb_cols = p.xbs_per_core;
    arch.xbar.rows = p.xb_rows;
    arch.xbar.cols = p.xb_cols;
    arch.xbar.parallel_row = p.parallel_row;
    return arch;
}

} // namespace

int
main()
{
    const Graph graph = models::vitTiny();
    std::printf("workload: %s (%lld weights)\n\n", graph.name().c_str(),
                static_cast<long long>(graph.totalWeights()));

    std::vector<DesignPoint> points;
    for (std::int64_t cores : {256, 512, 768, 1024}) {
        for (std::int64_t pr : {8, 32}) {
            points.push_back({cores, 16, 128, 256, pr});
        }
    }
    points.push_back({768, 16, 64, 512, 8});
    points.push_back({768, 16, 256, 128, 8});
    points.push_back({768, 16, 512, 64, 8});
    points.push_back({768, 8, 128, 256, 8});
    points.push_back({768, 20, 128, 256, 8});

    TextTable table({"architecture", "w/o opt", "full stack", "speedup",
                     "peak xbs"});
    double best_latency = 0.0;
    std::string best_name;
    for (const DesignPoint &p : points) {
        const CimArchitecture arch = makeArch(p);
        auto base = scheduleGraph(graph, arch, ScheduleOptions::none());
        auto full = scheduleGraph(graph, arch, ScheduleOptions::full());
        if (!base.isOk() || !full.isOk()) {
            std::fprintf(stderr, "%s failed to schedule\n",
                         arch.name.c_str());
            continue;
        }
        const double l0 = base.value().total_latency_cycles;
        const double l1 = full.value().total_latency_cycles;
        table.addRow({arch.name, strformat("%.4g", l0),
                      strformat("%.4g", l1),
                      strformat("%.2fx", l0 / l1),
                      std::to_string(full.value().peak_active_xbs)});
        if (best_name.empty() || l1 < best_latency) {
            best_latency = l1;
            best_name = arch.name;
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nbest configuration: %s (%.4g cycles)\n",
                best_name.c_str(), best_latency);
    return 0;
}
