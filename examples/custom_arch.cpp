/**
 * @file
 * Example: describing a *new* CIM chip in a text config and compiling
 * for it — the generality workflow of Section 3.2. The config below is
 * written to disk, loaded back through the Abs-arch parser, validated,
 * and used to compile and functionally verify a small CNN, end to end.
 */
#include <cstdio>
#include <fstream>

#include "arch/serialize.h"
#include "common/rng.h"
#include "compiler/compiler.h"
#include "funcsim/verify.h"
#include "graph/models.h"
#include "mop/printer.h"

using namespace cimmlc;

namespace {

constexpr const char *kConfigText = R"({
    # A hypothetical STT-MRAM chip with an H-tree interconnect and a
    # wordline-mode programming interface.
    "name": "example-mram-wlm",
    "computing_mode": "WLM",
    "weight_bits": 8,
    "activation_bits": 8,
    "chip_tier": {
        "core_grid": [4, 4],
        "core_noc": "h-tree",
        "core_noc_bandwidth": 256,
        "alu": 512,
        "l0_bandwidth": 256
    },
    "core_tier": {
        "xb_grid": [2, 2],
        "xb_noc": "shared-bus"
    },
    "xb_tier": {
        "xb_size": [128, 128],
        "parallel_row": 32,
        "dac": 2,
        "adc": 8,
        "type": "STT-MRAM",
        "precision": 2
    }
})";

} // namespace

int
main()
{
    // 1. Write and reload the architecture description.
    const std::string path = "/tmp/cimmlc_custom_arch.json";
    {
        std::ofstream out(path);
        out << kConfigText;
    }
    auto arch_or = archFromFile(path);
    if (!arch_or.isOk()) {
        std::fprintf(stderr, "config rejected: %s\n",
                     arch_or.status().toString().c_str());
        return 1;
    }
    const CimArchitecture &arch = arch_or.value();
    std::fputs(arch.toString().c_str(), stdout);

    // 2. Compile a small CNN for it.
    Graph graph = models::macroCnn();
    CimCompiler compiler(arch);
    auto result = compiler.compile(graph);
    if (!result.isOk()) {
        std::fprintf(stderr, "compile failed: %s\n",
                     result.status().toString().c_str());
        return 1;
    }
    std::fputs(result.value().schedule.summary(graph).c_str(), stdout);
    std::printf("%s\n\n", result.value().perf.toString().c_str());

    PrintOptions print;
    print.max_statements = 16;
    std::fputs(printProgram(result.value().code.program, print).c_str(),
               stdout);

    // 3. Verify the generated flow bit-exactly.
    Rng rng(5);
    graph.randomizeWeights(rng);
    Int8Tensor image(TensorShape({1, 1, 32, 32}));
    image.fillRandom(rng, -16, 16);
    auto verify = verifyCompiledFlow(
        graph, arch, ScheduleOptions::full(),
        {{graph.inputs()[0], image}});
    if (!verify.isOk() || !verify.value().match) {
        std::fprintf(stderr, "verification failed\n");
        return 1;
    }
    std::printf("\nfunctional check on '%s': BIT-EXACT MATCH "
                "(%lld elements)\n",
                arch.name.c_str(),
                static_cast<long long>(
                    verify.value().elements_checked));

    // 4. Round-trip the architecture back to disk.
    if (!saveConfigFile("/tmp/cimmlc_custom_arch_out.json",
                        archToConfig(arch))
             .isOk()) {
        return 1;
    }
    std::puts("architecture round-tripped to "
              "/tmp/cimmlc_custom_arch_out.json");
    return 0;
}
